(* Stamp array: stamp.(v) < epoch means variable v is unseen this round;
   otherwise phase.(v) records which phases of v occur in c1.  No clearing
   between rounds — bumping the epoch invalidates everything at once. *)
type engine = {
  stamp : int array;           (* per var: epoch of last touch *)
  phase : int array;           (* per var: 1 = pos seen, 2 = neg seen, 3 = both *)
  mutable epoch : int;
}

let create_engine ~nvars =
  { stamp = Array.make (nvars + 1) 0; phase = Array.make (nvars + 1) 0;
    epoch = 0 }

let phase_bit l = if Sat.Lit.is_neg l then 2 else 1

let resolve e ~context ~c1_id ~c2_id c1 c2 =
  e.epoch <- e.epoch + 1;
  let ep = e.epoch in
  Array.iter
    (fun l ->
      let v = Sat.Lit.var l in
      if e.stamp.(v) = ep then e.phase.(v) <- e.phase.(v) lor phase_bit l
      else begin
        e.stamp.(v) <- ep;
        e.phase.(v) <- phase_bit l
      end)
    c1;
  (* find clashing variables: a literal of c2 whose opposite phase occurs
     in c1 *)
  let pivot = ref 0 in
  let clashes = ref [] in
  Array.iter
    (fun l ->
      let v = Sat.Lit.var l in
      if e.stamp.(v) = ep && e.phase.(v) land phase_bit (Sat.Lit.negate l) <> 0
      then
        if !pivot = 0 then begin
          pivot := v;
          clashes := [ v ]
        end
        else if not (List.mem v !clashes) then clashes := v :: !clashes)
    c2;
  match !clashes with
  | [] ->
    Diagnostics.fail (Diagnostics.No_clash { context; c1_id; c2_id; c1; c2 })
  | _ :: _ :: _ ->
    Diagnostics.fail
      (Diagnostics.Multiple_clash
         { context; c1_id; c2_id; vars = List.sort Int.compare !clashes })
  | [ v ] ->
    (* build the duplicate-free resolvent under a fresh epoch: each
       (variable, phase) is emitted at most once, whether the duplicate
       comes from c1, c2, or within a single clause *)
    e.epoch <- e.epoch + 1;
    let ep2 = e.epoch in
    let out = ref [] in
    let n = ref 0 in
    let emit l =
      let u = Sat.Lit.var l in
      if u <> v then begin
        let fresh = e.stamp.(u) <> ep2 in
        let bit = phase_bit l in
        if fresh || e.phase.(u) land bit = 0 then begin
          e.phase.(u) <- (if fresh then bit else e.phase.(u) lor bit);
          e.stamp.(u) <- ep2;
          out := l :: !out;
          incr n
        end
      end
    in
    Array.iter emit c1;
    Array.iter emit c2;
    let arr = Array.make !n Sat.Lit.undef in
    List.iteri (fun i l -> arr.(i) <- l) !out;
    (arr, v)

let chain e ~context ~fetch ~learned_id ids =
  if Array.length ids = 0 then
    Diagnostics.fail (Diagnostics.Empty_source_list learned_id);
  let cur = ref (fetch ids.(0)) in
  let cur_id = ref ids.(0) in
  let steps = ref 0 in
  for i = 1 to Array.length ids - 1 do
    let next = fetch ids.(i) in
    let r, _pivot = resolve e ~context ~c1_id:!cur_id ~c2_id:ids.(i) !cur next in
    incr steps;
    cur := r;
    cur_id := learned_id (* intermediate resolvents belong to the learned id *)
  done;
  (!cur, !steps)
