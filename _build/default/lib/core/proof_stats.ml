type t = {
  learned_total : int;
  learned_needed : int;
  resolution_steps : int;
  dag_depth : int;
  max_clause_width : int;
  mean_clause_width : float;
  final_chain_length : int;
}

(* Measure while rebuilding breadth-first: clause literals give widths,
   the source lists give DAG depth (originals have depth 0), and a
   reverse sweep gives the needed set. *)
let analyze formula source =
  let num_original = Sat.Cnf.nclauses formula in
  let is_original id = id >= 1 && id <= num_original in
  let engine =
    Resolution.create_engine ~nvars:(Sat.Cnf.nvars formula)
  in
  let built = Hashtbl.create 1024 in
  let depth = Hashtbl.create 1024 in
  let defs = ref [] in
  let antes = ref [] in
  let l0 = Level0.create () in
  let final_conflict = ref None in
  let saw_header = ref false in
  let steps = ref 0 in
  let total = ref 0 in
  let width_sum = ref 0 in
  let width_max = ref 0 in
  let fetch id =
    match Hashtbl.find_opt built id with
    | Some c -> c
    | None ->
      if is_original id then Sat.Cnf.clause formula (id - 1)
      else
        Diagnostics.fail
          (Diagnostics.Unknown_clause { context = "proof statistics"; id })
  in
  let depth_of id =
    if is_original id then 0
    else Option.value ~default:0 (Hashtbl.find_opt depth id)
  in
  try
    Trace.Reader.iter source (fun e ->
        match e with
        | Trace.Event.Header h ->
          saw_header := true;
          if
            h.nvars <> Sat.Cnf.nvars formula || h.num_original <> num_original
          then
            Diagnostics.fail
              (Diagnostics.Header_mismatch
                 { trace_nvars = h.nvars; trace_norig = h.num_original;
                   formula_nvars = Sat.Cnf.nvars formula;
                   formula_norig = num_original })
        | Trace.Event.Learned l ->
          if is_original l.id then
            Diagnostics.fail (Diagnostics.Shadows_original l.id);
          if Hashtbl.mem built l.id then
            Diagnostics.fail (Diagnostics.Duplicate_definition l.id);
          let c, st =
            Resolution.chain engine ~context:"proof statistics" ~fetch
              ~learned_id:l.id l.sources
          in
          steps := !steps + st;
          incr total;
          let w = Array.length c in
          width_sum := !width_sum + w;
          if w > !width_max then width_max := w;
          Hashtbl.replace built l.id c;
          let d =
            1 + Array.fold_left (fun acc s -> max acc (depth_of s)) 0 l.sources
          in
          Hashtbl.replace depth l.id d;
          defs := (l.id, l.sources) :: !defs
        | Trace.Event.Level0 v ->
          Level0.add l0 ~var:v.var ~value:v.value ~ante:v.ante;
          antes := v.ante :: !antes
        | Trace.Event.Final_conflict id -> final_conflict := Some id);
    if not !saw_header then Diagnostics.fail Diagnostics.Missing_header;
    let conf_id =
      match !final_conflict with
      | Some id -> id
      | None -> Diagnostics.fail Diagnostics.Missing_final_conflict
    in
    (* run the final chain for its length and validity *)
    let chain_len =
      Final_chain.run engine l0 ~start:(fetch conf_id) ~start_id:conf_id
        ~fetch
    in
    (* needed set: conflict + antecedents, closed backwards over defs
       (defs is in reverse stream order already) *)
    let needed = Hashtbl.create 1024 in
    Hashtbl.replace needed conf_id ();
    List.iter (fun a -> Hashtbl.replace needed a ()) !antes;
    List.iter
      (fun (id, sources) ->
        if Hashtbl.mem needed id then
          Array.iter (fun s -> Hashtbl.replace needed s ()) sources)
      !defs;
    let learned_needed =
      Hashtbl.fold
        (fun id () acc -> if is_original id then acc else acc + 1)
        needed 0
    in
    Ok {
      learned_total = !total;
      learned_needed;
      resolution_steps = !steps + chain_len;
      dag_depth =
        List.fold_left
          (fun acc id -> max acc (depth_of id))
          (depth_of conf_id) !antes;
      max_clause_width = !width_max;
      mean_clause_width =
        (if !total = 0 then 0.0
         else float_of_int !width_sum /. float_of_int !total);
      final_chain_length = chain_len;
    }
  with
  | Diagnostics.Check_failed d -> Error d
  | Trace.Reader.Parse_error m -> Error (Diagnostics.Malformed_trace m)

let pp fmt s =
  Format.fprintf fmt
    "@[<v>learned: %d (%d needed)@,resolution steps: %d@,DAG depth: %d@,\
     clause width: mean %.1f, max %d@,final chain: %d steps@]"
    s.learned_total s.learned_needed s.resolution_steps s.dag_depth
    s.mean_clause_width s.max_clause_width s.final_chain_length
