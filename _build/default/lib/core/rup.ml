type failure =
  | Not_rup of { index : int; clause : Sat.Clause.t }
  | No_empty_clause
  | Variable_out_of_range of { index : int; var : Sat.Lit.var }

let pp_failure fmt = function
  | Not_rup n ->
    Format.fprintf fmt "derived clause %d %a is not reverse-unit-provable"
      n.index Sat.Clause.pp n.clause
  | No_empty_clause ->
    Format.fprintf fmt "derivation does not reach the empty clause"
  | Variable_out_of_range v ->
    Format.fprintf fmt
      "derived clause %d mentions variable %d, outside the formula's space"
      v.index v.var

type stats = {
  clauses_checked : int;
  propagations : int;
}

(* A minimal two-watched-literal propagation engine over a growing clause
   database.  Permanent state is the level-0 closure of the database;
   [with_assumptions] pushes temporary assignments and rolls the trail
   back afterwards (watches need no undo: they only ever move to
   literals that were non-false at the time, and undoing assignments
   cannot falsify them). *)
type engine = {
  nvars : int;
  value : int array;               (* 0 false, 1 true, 2 unassigned *)
  watches : int Sat.Vec.t array;   (* per literal: indices into clauses *)
  clauses : Sat.Clause.t Sat.Vec.t;
  trail : int Sat.Vec.t;
  mutable qhead : int;
  mutable permanent : int;         (* trail prefix that is never undone *)
  mutable contradictory : bool;    (* database itself propagates to conflict *)
  mutable s_props : int;
}

let v_unassigned = 2

let lit_value e l =
  let v = e.value.(Sat.Lit.var l) in
  if v = v_unassigned then v_unassigned
  else if Sat.Lit.is_neg l then 1 - v
  else v

let enqueue e l =
  e.value.(Sat.Lit.var l) <- (if Sat.Lit.is_neg l then 0 else 1);
  Sat.Vec.push e.trail l

let propagate e =
  let conflict = ref false in
  while (not !conflict) && e.qhead < Sat.Vec.length e.trail do
    let l = Sat.Vec.get e.trail e.qhead in
    e.qhead <- e.qhead + 1;
    e.s_props <- e.s_props + 1;
    let fl = Sat.Lit.negate l in
    let ws = e.watches.(fl) in
    let n = Sat.Vec.length ws in
    let j = ref 0 in
    let i = ref 0 in
    while !i < n do
      let ci = Sat.Vec.get ws !i in
      incr i;
      let c = Sat.Vec.get e.clauses ci in
      if c.(0) = fl then begin
        c.(0) <- c.(1);
        c.(1) <- fl
      end;
      if lit_value e c.(0) = 1 then begin
        Sat.Vec.set ws !j ci;
        incr j
      end
      else begin
        let len = Array.length c in
        let k = ref 2 in
        while !k < len && lit_value e c.(!k) = 0 do incr k done;
        if !k < len then begin
          c.(1) <- c.(!k);
          c.(!k) <- fl;
          Sat.Vec.push e.watches.(c.(1)) ci
        end
        else begin
          Sat.Vec.set ws !j ci;
          incr j;
          if lit_value e c.(0) = 0 then begin
            conflict := true;
            while !i < n do
              Sat.Vec.set ws !j (Sat.Vec.get ws !i);
              incr i;
              incr j
            done
          end
          else enqueue e c.(0)
        end
      end
    done;
    Sat.Vec.shrink ws !j
  done;
  if !conflict then e.qhead <- Sat.Vec.length e.trail;
  !conflict

(* roll the trail back to the permanent prefix *)
let undo_to_permanent e =
  for i = Sat.Vec.length e.trail - 1 downto e.permanent do
    e.value.(Sat.Lit.var (Sat.Vec.get e.trail i)) <- v_unassigned
  done;
  Sat.Vec.shrink e.trail e.permanent;
  e.qhead <- e.permanent

(* Add a clause permanently.  Returns false when the database has become
   contradictory under unit propagation. *)
let add_clause e c =
  if e.contradictory then false
  else begin
    let c =
      match Sat.Clause.normalize c with
      | Some d -> d
      | None -> [||] (* tautology: represent as no-op below *)
    in
    if Sat.Clause.is_tautology c then true
    else
      match Array.length c with
      | 0 ->
        e.contradictory <- true;
        false
      | 1 -> (
        match lit_value e c.(0) with
        | 1 -> true
        | 0 ->
          e.contradictory <- true;
          false
        | _ ->
          enqueue e c.(0);
          let conflict = propagate e in
          e.permanent <- Sat.Vec.length e.trail;
          if conflict then e.contradictory <- true;
          not conflict)
      | _ ->
        (* watch two non-false literals when possible *)
        let c = Array.copy c in
        let len = Array.length c in
        let place slot from =
          let k = ref from in
          while !k < len && lit_value e c.(!k) = 0 do incr k done;
          if !k < len then begin
            let tmp = c.(slot) in
            c.(slot) <- c.(!k);
            c.(!k) <- tmp;
            true
          end
          else false
        in
        let have0 = place 0 0 in
        let have1 = have0 && place 1 1 in
        if not have0 then begin
          (* all literals false under the permanent assignment *)
          e.contradictory <- true;
          false
        end
        else if not have1 then begin
          (* unit under the permanent assignment *)
          if lit_value e c.(0) = v_unassigned then enqueue e c.(0);
          let conflict = propagate e in
          e.permanent <- Sat.Vec.length e.trail;
          if conflict then e.contradictory <- true;
          (* keep the clause watched anyway for later steps *)
          Sat.Vec.push e.clauses c;
          let ci = Sat.Vec.length e.clauses - 1 in
          Sat.Vec.push e.watches.(c.(0)) ci;
          Sat.Vec.push e.watches.(c.(1)) ci;
          not conflict
        end
        else begin
          Sat.Vec.push e.clauses c;
          let ci = Sat.Vec.length e.clauses - 1 in
          Sat.Vec.push e.watches.(c.(0)) ci;
          Sat.Vec.push e.watches.(c.(1)) ci;
          true
        end
  end

let create f =
  let nvars = Sat.Cnf.nvars f in
  let e = {
    nvars;
    value = Array.make (nvars + 1) v_unassigned;
    watches = Array.init ((2 * nvars) + 2) (fun _ -> Sat.Vec.create ~dummy:0);
    clauses = Sat.Vec.create ~dummy:[||];
    trail = Sat.Vec.create ~dummy:0;
    qhead = 0;
    permanent = 0;
    contradictory = false;
    s_props = 0;
  } in
  Sat.Cnf.iter_clauses (fun _ c -> ignore (add_clause e c)) f;
  e

(* the RUP test: assume the negation of every literal, propagate *)
let clause_is_rup e c =
  if e.contradictory then true
  else begin
    let conflict = ref false in
    (try
       Array.iter
         (fun l ->
           let nl = Sat.Lit.negate l in
           match lit_value e nl with
           | 0 ->
             conflict := true;
             raise Exit
           | 1 -> ()
           | _ -> enqueue e nl)
         c
     with Exit -> ());
    let result = !conflict || propagate e in
    undo_to_permanent e;
    result
  end

let bad_var e c =
  Array.fold_left
    (fun acc l ->
      match acc with
      | Some _ -> acc
      | None ->
        let v = Sat.Lit.var l in
        if v < 1 || v > e.nvars then Some v else None)
    None c

let is_rup f c =
  let e = create f in
  match bad_var e c with
  | Some _ -> false
  | None -> clause_is_rup e c

let check f derivation =
  let e = create f in
  let rec loop index checked = function
    | [] -> Error No_empty_clause
    | c :: rest ->
      (match bad_var e c with
       | Some var -> Error (Variable_out_of_range { index; var })
       | None ->
      if not (clause_is_rup e c) then Error (Not_rup { index; clause = c })
      else if Array.length c = 0 then
        Ok { clauses_checked = checked + 1; propagations = e.s_props }
      else begin
        ignore (add_clause e c);
        loop (index + 1) (checked + 1) rest
      end)
  in
  loop 0 0 derivation
