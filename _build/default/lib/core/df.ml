(* clause storage overhead in words, on top of one word per literal *)
let clause_overhead = 3

type state = {
  formula : Sat.Cnf.t;
  meter : Harness.Meter.t;
  engine : Resolution.engine;
  num_original : int;
  sources : (int, int array) Hashtbl.t;   (* learned id -> resolve sources *)
  built : (int, Sat.Clause.t) Hashtbl.t;  (* id -> constructed literals *)
  in_progress : (int, unit) Hashtbl.t;    (* DFS cycle detection *)
  core : (int, unit) Hashtbl.t;           (* original ids touched *)
  mutable clauses_built : int;
  mutable resolution_steps : int;
  l0 : Level0.t;
  mutable final_conflict : int option;
  mutable total_learned : int;
}

let store st id c =
  Harness.Meter.alloc st.meter (Array.length c + clause_overhead);
  Hashtbl.replace st.built id c

let is_original st id = id >= 1 && id <= st.num_original

let original_clause st id =
  st.core |> fun core ->
  Hashtbl.replace core id ();
  Sat.Cnf.clause st.formula (id - 1)

(* Figure 3's recursive_build, iteratively with an explicit stack so deep
   proofs cannot overflow the OCaml call stack. *)
let rec_build st root =
  let stack = ref [ root ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | id :: rest ->
      if Hashtbl.mem st.built id then begin
        Hashtbl.remove st.in_progress id;
        stack := rest
      end
      else if is_original st id then begin
        store st id (original_clause st id);
        st.clauses_built <- st.clauses_built + 1;
        stack := rest
      end
      else begin
        match Hashtbl.find_opt st.sources id with
        | None ->
          Diagnostics.fail
            (Diagnostics.Unknown_clause
               { context = "depth-first build"; id })
        | Some srcs ->
          let missing = ref 0 in
          Array.iter
            (fun s ->
              if !missing = 0 && not (Hashtbl.mem st.built s)
                 && not (is_original st s)
              then missing := s)
            srcs;
          (* original sources are built inline: they never recurse *)
          Array.iter
            (fun s ->
              if is_original st s && not (Hashtbl.mem st.built s) then begin
                store st s (original_clause st s);
                st.clauses_built <- st.clauses_built + 1
              end)
            srcs;
          if !missing = 0 then begin
            let fetch s =
              match Hashtbl.find_opt st.built s with
              | Some c -> c
              | None ->
                Diagnostics.fail
                  (Diagnostics.Unknown_clause
                     { context = "depth-first build"; id = s })
            in
            let c, steps =
              Resolution.chain st.engine
                ~context:"learned-clause reconstruction"
                ~fetch ~learned_id:id srcs
            in
            st.resolution_steps <- st.resolution_steps + steps;
            store st id c;
            st.clauses_built <- st.clauses_built + 1;
            Hashtbl.remove st.in_progress id;
            stack := rest
          end
          else begin
            if Hashtbl.mem st.in_progress !missing then
              Diagnostics.fail (Diagnostics.Cyclic_definition !missing);
            Hashtbl.replace st.in_progress id ();
            Hashtbl.replace st.in_progress !missing ();
            stack := !missing :: !stack
          end
      end
  done;
  Hashtbl.find st.built root

(* words charged for holding the parsed trace in memory (§3.2's
   disadvantage: "the checker needs to read in the entire trace file into
   main memory") *)
let trace_residency_words = function
  | Trace.Event.Header _ -> 2
  | Trace.Event.Learned l -> 2 + Array.length l.sources
  | Trace.Event.Level0 _ -> 3
  | Trace.Event.Final_conflict _ -> 1

let load st source =
  let saw_header = ref false in
  Trace.Reader.iter source (fun e ->
      Harness.Meter.alloc st.meter (trace_residency_words e);
      match e with
      | Trace.Event.Header h ->
        saw_header := true;
        if
          h.nvars <> Sat.Cnf.nvars st.formula
          || h.num_original <> Sat.Cnf.nclauses st.formula
        then
          Diagnostics.fail
            (Diagnostics.Header_mismatch
               { trace_nvars = h.nvars; trace_norig = h.num_original;
                 formula_nvars = Sat.Cnf.nvars st.formula;
                 formula_norig = Sat.Cnf.nclauses st.formula })
      | Trace.Event.Learned l ->
        if is_original st l.id then
          Diagnostics.fail (Diagnostics.Shadows_original l.id);
        if Hashtbl.mem st.sources l.id then
          Diagnostics.fail (Diagnostics.Duplicate_definition l.id);
        if Array.length l.sources = 0 then
          Diagnostics.fail (Diagnostics.Empty_source_list l.id);
        Hashtbl.replace st.sources l.id l.sources;
        st.total_learned <- st.total_learned + 1
      | Trace.Event.Level0 v ->
        Level0.add st.l0 ~var:v.var ~value:v.value ~ante:v.ante
      | Trace.Event.Final_conflict id -> st.final_conflict <- Some id);
  if not !saw_header then Diagnostics.fail Diagnostics.Missing_header

let core_vars st =
  let seen = Hashtbl.create 64 in
  Hashtbl.iter
    (fun id () ->
      Array.iter
        (fun l -> Hashtbl.replace seen (Sat.Lit.var l) ())
        (Sat.Cnf.clause st.formula (id - 1)))
    st.core;
  Hashtbl.length seen

let check ?meter formula source =
  let meter =
    match meter with Some m -> m | None -> Harness.Meter.create ()
  in
  let st = {
    formula;
    meter;
    engine = Resolution.create_engine ~nvars:(Sat.Cnf.nvars formula);
    num_original = Sat.Cnf.nclauses formula;
    sources = Hashtbl.create 1024;
    built = Hashtbl.create 1024;
    in_progress = Hashtbl.create 64;
    core = Hashtbl.create 256;
    clauses_built = 0;
    resolution_steps = 0;
    l0 = Level0.create ();
    final_conflict = None;
    total_learned = 0;
  } in
  try
    load st source;
    let conf_id =
      match st.final_conflict with
      | Some id -> id
      | None -> Diagnostics.fail Diagnostics.Missing_final_conflict
    in
    let start = rec_build st conf_id in
    let steps =
      Final_chain.run st.engine st.l0 ~start ~start_id:conf_id
        ~fetch:(fun id -> rec_build st id)
    in
    st.resolution_steps <- st.resolution_steps + steps;
    let learned_built_ids =
      (* only learned clauses count towards Built%, as in the paper *)
      Hashtbl.fold
        (fun id _ acc -> if is_original st id then acc else id :: acc)
        st.built []
      |> List.sort Int.compare
    in
    Ok {
      Report.clauses_built = List.length learned_built_ids;
      learned_built_ids;
      total_learned = st.total_learned;
      resolution_steps = st.resolution_steps;
      core_original_ids =
        List.sort Int.compare
          (Hashtbl.fold (fun id () acc -> id :: acc) st.core []);
      core_vars = core_vars st;
      peak_mem_words = Harness.Meter.peak_words meter;
    }
  with
  | Diagnostics.Check_failed f -> Error f
  | Trace.Reader.Parse_error m -> Error (Diagnostics.Malformed_trace m)
