(** Checked resolution — the verification core.  Each step enforces the
    side condition the paper calls out for [resolve(cl, cl1)]: "check
    whether there is one and only one variable appearing in both clauses
    with different phases" (§3.2).  Violations raise
    {!Diagnostics.Check_failed} with enough context to debug the solver.

    An {!engine} carries variable-indexed stamp arrays so that one
    resolution costs O(|c1| + |c2|) instead of the naive quadratic scan —
    checking must stay much cheaper than solving (Table 2). *)

type engine

val create_engine : nvars:int -> engine

(** [resolve e ~context ~c1_id ~c2_id c1 c2] is [(resolvent, pivot)]; the
    resolvent is duplicate-free.
    @raise Diagnostics.Check_failed with [No_clash] or [Multiple_clash]
    when the side condition fails. *)
val resolve :
  engine ->
  context:string ->
  c1_id:int ->
  c2_id:int ->
  Sat.Clause.t ->
  Sat.Clause.t ->
  Sat.Clause.t * Sat.Lit.var

(** [chain e ~context ~fetch ~learned_id ids] folds checked resolution
    left-to-right over the clauses named by [ids] ([fetch] maps an ID to
    its literal array), returning the final resolvent and the number of
    resolution steps.  A single-element chain is the clause itself (a
    degenerate learned clause whose conflict was already asserting).
    @raise Diagnostics.Check_failed on any invalid step, and with
    [Empty_source_list] when [ids] is empty. *)
val chain :
  engine ->
  context:string ->
  fetch:(int -> Sat.Clause.t) ->
  learned_id:int ->
  int array ->
  Sat.Clause.t * int
