let clause_overhead = 3

type counting = [ `In_memory | `Temp_file of int (* chunk size *) ]

(* The use counts are the paper's "temporary file".  In-memory mode keeps
   one hash table; temp-file mode writes totals to a real file on disk in
   chunked counting passes and caches counters in memory only for clauses
   currently alive. *)
type counts =
  | Mem_counts of (int, int) Hashtbl.t
  | File_counts of { ic : in_channel; live : (int, int) Hashtbl.t }

type state = {
  formula : Sat.Cnf.t;
  meter : Harness.Meter.t;
  engine : Resolution.engine;
  num_original : int;
  mutable counts : counts;
  alive : (int, Sat.Clause.t) Hashtbl.t;  (* clauses currently in memory *)
  defined : (int, unit) Hashtbl.t;        (* learned ids seen (pass 2) *)
  l0 : Level0.t;
  mutable final_conflict : int option;
  mutable total_learned : int;
  mutable clauses_built : int;
  mutable resolution_steps : int;
}

let read_count_from_file ic id =
  seek_in ic (4 * id);
  let b0 = input_byte ic in
  let b1 = input_byte ic in
  let b2 = input_byte ic in
  let b3 = input_byte ic in
  b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)

let get_count st id =
  match st.counts with
  | Mem_counts tbl -> Option.value ~default:0 (Hashtbl.find_opt tbl id)
  | File_counts { ic; live } -> (
    match Hashtbl.find_opt live id with
    | Some n -> n
    | None -> ( try read_count_from_file ic id with End_of_file -> 0))

let set_count st id n =
  match st.counts with
  | Mem_counts tbl -> if n <= 0 then Hashtbl.remove tbl id else Hashtbl.replace tbl id n
  | File_counts { live; _ } ->
    if n <= 0 then Hashtbl.remove live id else Hashtbl.replace live id n

let is_original st id = id >= 1 && id <= st.num_original

let add_use st id = set_count st id (1 + get_count st id)

(* Temp-file counting: stream the trace once per chunk of the ID space,
   accumulate that chunk's use counts in a bounded slab, and append the
   slab to the file — the paper's multi-pass variant of pass one. *)
let iter_use_ids source f =
  Trace.Reader.iter source (fun e ->
      match e with
      | Trace.Event.Header _ -> ()
      | Trace.Event.Learned l -> Array.iter f l.sources
      | Trace.Event.Level0 v -> f v.ante
      | Trace.Event.Final_conflict id -> f id)

let write_counts_file source ~chunk =
  let chunk = max 1 chunk in
  let max_id = ref 0 in
  iter_use_ids source (fun id -> if id > !max_id then max_id := id);
  let path = Filename.temp_file "bf_counts" ".bin" in
  let oc = open_out_bin path in
  let slab = Array.make chunk 0 in
  let lo = ref 0 in
  while !lo <= !max_id do
    Array.fill slab 0 chunk 0;
    let hi = !lo + chunk in
    iter_use_ids source (fun id ->
        if id >= !lo && id < hi then slab.(id - !lo) <- slab.(id - !lo) + 1);
    for i = 0 to chunk - 1 do
      let n = slab.(i) in
      output_byte oc (n land 0xff);
      output_byte oc ((n lsr 8) land 0xff);
      output_byte oc ((n lsr 16) land 0xff);
      output_byte oc ((n lsr 24) land 0xff)
    done;
    lo := hi
  done;
  close_out oc;
  path

(* Pass one: validate record shape and count uses.  Stream order is
   enforced here: a learned clause may only reference already-defined
   clauses, which is exactly the property that makes pass two possible. *)
let count_pass st ~count_in_memory source =
  let saw_header = ref false in
  let seen = Hashtbl.create 1024 in
  Trace.Reader.iter source (fun e ->
      match e with
      | Trace.Event.Header h ->
        saw_header := true;
        if
          h.nvars <> Sat.Cnf.nvars st.formula
          || h.num_original <> Sat.Cnf.nclauses st.formula
        then
          Diagnostics.fail
            (Diagnostics.Header_mismatch
               { trace_nvars = h.nvars; trace_norig = h.num_original;
                 formula_nvars = Sat.Cnf.nvars st.formula;
                 formula_norig = Sat.Cnf.nclauses st.formula })
      | Trace.Event.Learned l ->
        if is_original st l.id then
          Diagnostics.fail (Diagnostics.Shadows_original l.id);
        if Hashtbl.mem seen l.id then
          Diagnostics.fail (Diagnostics.Duplicate_definition l.id);
        if Array.length l.sources = 0 then
          Diagnostics.fail (Diagnostics.Empty_source_list l.id);
        Array.iter
          (fun s ->
            if not (is_original st s) && not (Hashtbl.mem seen s) then
              Diagnostics.fail
                (Diagnostics.Forward_reference { id = l.id; source = s });
            if count_in_memory then add_use st s)
          l.sources;
        Hashtbl.replace seen l.id ();
        st.total_learned <- st.total_learned + 1
      | Trace.Event.Level0 v ->
        Level0.add st.l0 ~var:v.var ~value:v.value ~ante:v.ante;
        if count_in_memory then add_use st v.ante
      | Trace.Event.Final_conflict id ->
        st.final_conflict <- Some id;
        if count_in_memory then add_use st id);
  if not !saw_header then Diagnostics.fail Diagnostics.Missing_header

let store st id c =
  Harness.Meter.alloc st.meter (Array.length c + clause_overhead);
  Hashtbl.replace st.alive id c

let release_one_use st id =
  match get_count st id with
  | 0 -> ()
  | n when n <= 1 ->
    set_count st id 0;
    (match Hashtbl.find_opt st.alive id with
     | Some c ->
       Harness.Meter.free st.meter (Array.length c + clause_overhead);
       Hashtbl.remove st.alive id
     | None -> ())
  | n -> set_count st id (n - 1)

(* Fetch a clause for use as a resolve source or antecedent; original
   clauses are materialised on demand and participate in use counting so
   they too are released when no longer needed. *)
let fetch st context id =
  match Hashtbl.find_opt st.alive id with
  | Some c -> c
  | None ->
    if is_original st id then begin
      let c = Sat.Cnf.clause st.formula (id - 1) in
      store st id c;
      c
    end
    else Diagnostics.fail (Diagnostics.Unknown_clause { context; id })

let build_pass st source =
  Trace.Reader.iter source (fun e ->
      match e with
      | Trace.Event.Header _ -> ()
      | Trace.Event.Learned l ->
        (* breadth-first builds every learned clause (the 100% Built
           column); ones with no recorded use are validated but not
           stored *)
        let c, steps =
          Resolution.chain st.engine ~context:"breadth-first reconstruction"
            ~fetch:(fun id -> fetch st "breadth-first reconstruction" id)
            ~learned_id:l.id l.sources
        in
        st.resolution_steps <- st.resolution_steps + steps;
        st.clauses_built <- st.clauses_built + 1;
        Hashtbl.replace st.defined l.id ();
        if get_count st l.id > 0 then begin
          store st l.id c;
          (* temp-file mode: cache the counter while the clause is alive *)
          set_count st l.id (get_count st l.id)
        end;
        Array.iter (fun s -> release_one_use st s) l.sources
      | Trace.Event.Level0 _ -> ()
      | Trace.Event.Final_conflict _ -> ())

let check ?meter ?(counting = `In_memory) formula source =
  let meter =
    match meter with Some m -> m | None -> Harness.Meter.create ()
  in
  let counts, temp_path =
    match counting with
    | `In_memory -> (Mem_counts (Hashtbl.create 4096), None)
    | `Temp_file chunk ->
      let path = write_counts_file source ~chunk in
      let ic = open_in_bin path in
      (File_counts { ic; live = Hashtbl.create 256 }, Some (path, ic))
  in
  let st = {
    formula;
    meter;
    engine = Resolution.create_engine ~nvars:(Sat.Cnf.nvars formula);
    num_original = Sat.Cnf.nclauses formula;
    counts;
    alive = Hashtbl.create 1024;
    defined = Hashtbl.create 1024;
    l0 = Level0.create ();
    final_conflict = None;
    total_learned = 0;
    clauses_built = 0;
    resolution_steps = 0;
  } in
  let cleanup () =
    match temp_path with
    | Some (path, ic) ->
      close_in_noerr ic;
      (try Sys.remove path with Sys_error _ -> ())
    | None -> ()
  in
  let count_in_memory = match counting with `In_memory -> true | `Temp_file _ -> false in
  try
    count_pass st ~count_in_memory source;
    let conf_id =
      match st.final_conflict with
      | Some id -> id
      | None -> Diagnostics.fail Diagnostics.Missing_final_conflict
    in
    build_pass st source;
    let start = fetch st "final conflict" conf_id in
    let steps =
      Final_chain.run st.engine st.l0 ~start ~start_id:conf_id
        ~fetch:(fun id -> fetch st "empty-clause construction" id)
    in
    st.resolution_steps <- st.resolution_steps + steps;
    Ok {
      Report.clauses_built = st.clauses_built;
      total_learned = st.total_learned;
      resolution_steps = st.resolution_steps;
      core_original_ids = [];
      learned_built_ids =
        List.sort Int.compare
          (Hashtbl.fold (fun id () acc -> id :: acc) st.defined []);
      core_vars = 0;
      peak_mem_words = Harness.Meter.peak_words meter;
    }
    |> fun r ->
    cleanup ();
    r
  with
  | Diagnostics.Check_failed f ->
    cleanup ();
    Error f
  | Trace.Reader.Parse_error m ->
    cleanup ();
    Error (Diagnostics.Malformed_trace m)
