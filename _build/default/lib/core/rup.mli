(** Reverse-unit-propagation (RUP) checking — the lineage from this paper
    to modern practice.

    Van Gelder's RUP criterion (cited as [13]) and today's DRUP/DRAT
    toolchains validate a clause [c] against a database [F] by adding the
    negation of every literal of [c] as an assumption and running unit
    propagation: if that yields a conflict, [c] is a logical consequence
    obtainable by trivial resolution.  A derivation — the learned clauses
    in the order the solver produced them, ending with the empty clause —
    certifies unsatisfiability without recording resolve sources at all:
    fatter propagation at check time buys a much smaller proof artefact.
    This module implements that checker; {!Pipeline.Drup} converts this
    paper's resolve-source traces into such derivations. *)

type failure =
  | Not_rup of { index : int; clause : Sat.Clause.t }
      (** derived clause [index] (0-based) is not reverse-unit-provable
          from the database accumulated so far *)
  | No_empty_clause
      (** the derivation never reaches the empty clause *)
  | Variable_out_of_range of { index : int; var : Sat.Lit.var }
      (** a derived clause mentions a variable the formula does not have *)

val pp_failure : Format.formatter -> failure -> unit

type stats = {
  clauses_checked : int;   (** derivation steps validated *)
  propagations : int;      (** literals propagated across all steps *)
}

(** [check f derivation] validates that the clause sequence is a RUP
    derivation of the empty clause from [f].  Clauses after the first
    empty clause are ignored. *)
val check :
  Sat.Cnf.t -> Sat.Clause.t list -> (stats, failure) result

(** [is_rup f c] answers whether a single clause is RUP with respect to
    [f] alone (convenience for tests and exploration). *)
val is_rup : Sat.Cnf.t -> Sat.Clause.t -> bool
