let check_all_false l0 ~clause_id c =
  Array.iter
    (fun l ->
      if not (Level0.lit_false l0 l) then
        Diagnostics.fail
          (Diagnostics.Final_literal_not_false { clause_id; lit = l }))
    c

(* reverse chronological choice: the literal whose variable was assigned
   last — the paper's choose_literal, which guarantees termination in at
   most n resolutions *)
let deepest_var l0 c =
  let best = ref (-1) in
  let best_order = ref (-1) in
  Array.iter
    (fun l ->
      let v = Sat.Lit.var l in
      let o = Level0.order l0 v in
      if o > !best_order then begin
        best := v;
        best_order := o
      end)
    c;
  !best

let run engine l0 ~start ~start_id ~fetch =
  check_all_false l0 ~clause_id:start_id start;
  let cur = ref start in
  let cur_id = ref start_id in
  let steps = ref 0 in
  while Array.length !cur > 0 do
    let v = deepest_var l0 !cur in
    let ante_id = Level0.ante l0 v in
    let ante = fetch ante_id in
    (match Level0.check_antecedent l0 ~var:v ante with
     | None -> ()
     | Some reason ->
       Diagnostics.fail
         (Diagnostics.Antecedent_mismatch { var = v; ante = ante_id; reason }));
    let r, pivot =
      Resolution.resolve engine ~context:"empty-clause construction"
        ~c1_id:!cur_id ~c2_id:ante_id !cur ante
    in
    if pivot <> v then
      Diagnostics.fail
        (Diagnostics.Wrong_pivot
           { context = "empty-clause construction"; expected = v;
             actual = pivot });
    incr steps;
    cur := r;
    cur_id := -1 (* intermediate chain resolvent *)
  done;
  !steps
