(** Trace trimming: rewrite a validated trace so it contains only the
    learned clauses actually involved in the empty-clause derivation.

    This is the trace-level counterpart of §4's unsatisfiable core — the
    depth-first checker discovers which clauses the proof needs, and
    trimming persists that discovery, so later re-checks skip the
    construction of unneeded clauses entirely (the same idea modern
    DRAT toolchains call the "core proof").

    The trimmed trace is itself a valid trace for the same formula: it
    passes both checkers, and its Built% is 100% by construction. *)

type trimmed = {
  events : Trace.Event.t list;  (** trimmed trace, original order *)
  kept_learned : int;           (** CL records kept *)
  dropped_learned : int;        (** CL records removed *)
}

(** [trim f source] validates [source] depth-first and returns the
    trimmed trace.  Fails with the underlying diagnostic when the input
    trace does not check. *)
val trim :
  Sat.Cnf.t ->
  Trace.Reader.source ->
  (trimmed, Diagnostics.failure) Stdlib.result

(** [write w r] emits the trimmed events through a trace writer. *)
val write : Trace.Writer.t -> trimmed -> unit
