let clause_overhead = 3

type state = {
  formula : Sat.Cnf.t;
  meter : Harness.Meter.t;
  engine : Resolution.engine;
  num_original : int;
  built_ids : int Sat.Vec.t;              (* learned ids built in pass 2 *)
  defs : (int * int array) Sat.Vec.t;     (* pass 1: (id, sources) in order *)
  antes : int Sat.Vec.t;                  (* antecedent ids of VAR records *)
  needed : (int, unit) Hashtbl.t;         (* reachable from the conflict *)
  use_count : (int, int) Hashtbl.t;       (* uses among needed clauses *)
  alive : (int, Sat.Clause.t) Hashtbl.t;
  core : (int, unit) Hashtbl.t;           (* original ids in the proof *)
  l0 : Level0.t;
  mutable final_conflict : int option;
  mutable total_learned : int;
  mutable clauses_built : int;
  mutable resolution_steps : int;
}

let is_original st id = id >= 1 && id <= st.num_original

(* Pass one: collect source lists (charged to the meter: this is the part
   of the trace the hybrid must hold, like DF) and validate record
   shape / stream order, like BF. *)
let collect_pass st source =
  let saw_header = ref false in
  let seen = Hashtbl.create 1024 in
  Trace.Reader.iter source (fun e ->
      match e with
      | Trace.Event.Header h ->
        saw_header := true;
        if
          h.nvars <> Sat.Cnf.nvars st.formula
          || h.num_original <> Sat.Cnf.nclauses st.formula
        then
          Diagnostics.fail
            (Diagnostics.Header_mismatch
               { trace_nvars = h.nvars; trace_norig = h.num_original;
                 formula_nvars = Sat.Cnf.nvars st.formula;
                 formula_norig = Sat.Cnf.nclauses st.formula })
      | Trace.Event.Learned l ->
        if is_original st l.id then
          Diagnostics.fail (Diagnostics.Shadows_original l.id);
        if Hashtbl.mem seen l.id then
          Diagnostics.fail (Diagnostics.Duplicate_definition l.id);
        if Array.length l.sources = 0 then
          Diagnostics.fail (Diagnostics.Empty_source_list l.id);
        Array.iter
          (fun s ->
            if not (is_original st s) && not (Hashtbl.mem seen s) then
              Diagnostics.fail
                (Diagnostics.Forward_reference { id = l.id; source = s }))
          l.sources;
        Hashtbl.replace seen l.id ();
        Harness.Meter.alloc st.meter (2 + Array.length l.sources);
        Sat.Vec.push st.defs (l.id, l.sources);
        st.total_learned <- st.total_learned + 1
      | Trace.Event.Level0 v ->
        Level0.add st.l0 ~var:v.var ~value:v.value ~ante:v.ante;
        Sat.Vec.push st.antes v.ante
      | Trace.Event.Final_conflict id -> st.final_conflict <- Some id);
  if not !saw_header then Diagnostics.fail Diagnostics.Missing_header

let add_need st id =
  Hashtbl.replace st.needed id ();
  Hashtbl.replace st.use_count id
    (1 + Option.value ~default:0 (Hashtbl.find_opt st.use_count id))

(* Reverse sweep: because stream order forbids forward references, one
   backward pass over the definitions computes the exact reachable set
   from the final conflict and per-clause use counts. *)
let mark_needed st conf_id =
  add_need st conf_id;
  (* every recorded antecedent may be used by the empty-clause chain *)
  Sat.Vec.iter (fun ante -> add_need st ante) st.antes;
  for i = Sat.Vec.length st.defs - 1 downto 0 do
    let id, sources = Sat.Vec.get st.defs i in
    if Hashtbl.mem st.needed id then Array.iter (fun s -> add_need st s) sources
  done

let store st id c =
  Harness.Meter.alloc st.meter (Array.length c + clause_overhead);
  Hashtbl.replace st.alive id c

let release_one_use st id =
  match Hashtbl.find_opt st.use_count id with
  | None -> ()
  | Some n when n <= 1 ->
    Hashtbl.remove st.use_count id;
    (match Hashtbl.find_opt st.alive id with
     | Some c ->
       Harness.Meter.free st.meter (Array.length c + clause_overhead);
       Hashtbl.remove st.alive id
     | None -> ())
  | Some n -> Hashtbl.replace st.use_count id (n - 1)

let fetch st context id =
  match Hashtbl.find_opt st.alive id with
  | Some c -> c
  | None ->
    if is_original st id then begin
      Hashtbl.replace st.core id ();
      let c = Sat.Cnf.clause st.formula (id - 1) in
      store st id c;
      c
    end
    else Diagnostics.fail (Diagnostics.Unknown_clause { context; id })

(* Pass two: rebuild only the needed clauses, in stream order. *)
let build_pass st source =
  Trace.Reader.iter source (fun e ->
      match e with
      | Trace.Event.Learned l when Hashtbl.mem st.needed l.id ->
        let c, steps =
          Resolution.chain st.engine ~context:"hybrid reconstruction"
            ~fetch:(fun id -> fetch st "hybrid reconstruction" id)
            ~learned_id:l.id l.sources
        in
        st.resolution_steps <- st.resolution_steps + steps;
        st.clauses_built <- st.clauses_built + 1;
        Sat.Vec.push st.built_ids l.id;
        store st l.id c;
        Array.iter (fun s -> release_one_use st s) l.sources
      | Trace.Event.Learned _ | Trace.Event.Header _ | Trace.Event.Level0 _
      | Trace.Event.Final_conflict _ -> ())

let core_vars st =
  let seen = Hashtbl.create 64 in
  Hashtbl.iter
    (fun id () ->
      Array.iter
        (fun l -> Hashtbl.replace seen (Sat.Lit.var l) ())
        (Sat.Cnf.clause st.formula (id - 1)))
    st.core;
  Hashtbl.length seen

let check ?meter formula source =
  let meter =
    match meter with Some m -> m | None -> Harness.Meter.create ()
  in
  let st = {
    formula;
    meter;
    engine = Resolution.create_engine ~nvars:(Sat.Cnf.nvars formula);
    num_original = Sat.Cnf.nclauses formula;
    built_ids = Sat.Vec.create ~dummy:0;
    defs = Sat.Vec.create ~dummy:(0, [||]);
    antes = Sat.Vec.create ~dummy:0;
    needed = Hashtbl.create 1024;
    use_count = Hashtbl.create 1024;
    alive = Hashtbl.create 256;
    core = Hashtbl.create 256;
    l0 = Level0.create ();
    final_conflict = None;
    total_learned = 0;
    clauses_built = 0;
    resolution_steps = 0;
  } in
  try
    collect_pass st source;
    let conf_id =
      match st.final_conflict with
      | Some id -> id
      | None -> Diagnostics.fail Diagnostics.Missing_final_conflict
    in
    mark_needed st conf_id;
    (* release the source lists: pass two re-reads them from the stream *)
    let defs_words =
      Sat.Vec.fold (fun acc (_, s) -> acc + 2 + Array.length s) 0 st.defs
    in
    Sat.Vec.clear st.defs;
    Harness.Meter.free st.meter defs_words;
    build_pass st source;
    let start = fetch st "final conflict" conf_id in
    let steps =
      Final_chain.run st.engine st.l0 ~start ~start_id:conf_id
        ~fetch:(fun id -> fetch st "empty-clause construction" id)
    in
    st.resolution_steps <- st.resolution_steps + steps;
    Ok {
      Report.clauses_built = st.clauses_built;
      total_learned = st.total_learned;
      resolution_steps = st.resolution_steps;
      core_original_ids =
        List.sort Int.compare
          (Hashtbl.fold (fun id () acc -> id :: acc) st.core []);
      learned_built_ids = List.sort Int.compare (Sat.Vec.to_list st.built_ids);
      core_vars = core_vars st;
      peak_mem_words = Harness.Meter.peak_words meter;
    }
  with
  | Diagnostics.Check_failed f -> Error f
  | Trace.Reader.Parse_error m -> Error (Diagnostics.Malformed_trace m)
