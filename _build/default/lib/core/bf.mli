(** Breadth-first checker (paper §3.3).

    The trace is streamed twice.  Pass one counts, for every clause ID,
    how many times it is used as a resolve source (plus one use for each
    antecedent/final-conflict reference).  Pass two rebuilds each learned
    clause in trace order — all its sources are guaranteed to be already
    constructed — and releases a clause the moment its use count drains.

    This is the paper's memory guarantee: the checker never holds more
    clauses than the solver itself did while producing the trace, so if
    the solver finished, the checker cannot run out of memory.  The price
    is building 100% of the learned clauses (Table 2: slower, typically
    around 2x, but a small bounded footprint; it finishes the instances
    where depth-first dies).

    The use counts are the paper's temporary file.  [`In_memory] (the
    default) keeps them in a hash table, uncharged to the meter;
    [`Temp_file chunk] reproduces the paper's implementation literally — the
    counting pass is broken into chunks of [chunk] clause IDs, each
    chunk's counts are written to a real temporary file on disk, and
    during the resolution pass a clause's total count is read back from
    the file when the clause is constructed, so main memory holds
    counters only for clauses that are currently alive ("we may also
    need to break the first pass into several passes so that we can
    count the number of usages of the clauses in one range at a time"). *)

type counting = [ `In_memory | `Temp_file of int (* chunk size *) ]

val check :
  ?meter:Harness.Meter.t ->
  ?counting:counting ->
  Sat.Cnf.t ->
  Trace.Reader.source ->
  (Report.t, Diagnostics.failure) result
