lib/bdd/robdd.ml: Array Circuit Float Hashtbl List Option Sat
