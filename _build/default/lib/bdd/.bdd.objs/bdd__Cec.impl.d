lib/bdd/cec.ml: Array Circuit List Robdd
