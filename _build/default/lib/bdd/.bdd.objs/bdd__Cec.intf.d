lib/bdd/cec.mli: Circuit
