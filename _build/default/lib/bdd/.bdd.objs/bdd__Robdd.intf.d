lib/bdd/robdd.mli: Circuit Sat
