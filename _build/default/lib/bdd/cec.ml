type verdict =
  | Equivalent
  | Counterexample of (string * bool) list
  | Node_limit

let check ?(node_limit = 1_000_000) c outs1 outs2 =
  if List.length outs1 <> List.length outs2 then
    invalid_arg "Cec.check: output width mismatch";
  let nvars = max 1 (Circuit.Netlist.num_inputs c) in
  let m = Robdd.create ~node_limit ~nvars () in
  match Robdd.of_netlist m c (outs1 @ outs2) with
  | exception Robdd.Node_limit_reached -> Node_limit
  | bdds ->
    let n = List.length outs1 in
    let rec split i acc = function
      | rest when i = n -> (List.rev acc, rest)
      | x :: rest -> split (i + 1) (x :: acc) rest
      | [] -> (List.rev acc, [])
    in
    let b1, b2 = split 0 [] bdds in
    (* canonical: inequivalence is a non-equal pair; the witness comes
       from the XOR of the first differing pair *)
    let rec find_diff b1 b2 =
      match b1, b2 with
      | [], [] -> Equivalent
      | x :: xs, y :: ys ->
        if Robdd.equal x y then find_diff xs ys
        else begin
          match Robdd.any_sat m (Robdd.xor_ m x y) with
          | None -> find_diff xs ys (* cannot happen on unequal nodes *)
          | Some valuation ->
            let names = Array.of_list (Circuit.Netlist.input_names c) in
            Counterexample
              (List.map (fun (v, b) -> (names.(v - 1), b)) valuation)
        end
      | _, _ -> assert false
    in
    (try find_diff b1 b2
     with Robdd.Node_limit_reached -> Node_limit)

let output_size ?(node_limit = 1_000_000) c out =
  let nvars = max 1 (Circuit.Netlist.num_inputs c) in
  let m = Robdd.create ~node_limit ~nvars () in
  match Robdd.of_netlist m c [ out ] with
  | exception Robdd.Node_limit_reached -> None
  | [ b ] -> Some (Robdd.size m b)
  | _ -> None
