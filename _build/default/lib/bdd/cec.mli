(** Combinational equivalence checking via BDDs — the baseline flow the
    SAT-based flow of the paper displaced for these workloads.  Because
    ROBDDs are canonical, equivalence is one pointer comparison once the
    output functions are built; the cost (and the reason SAT won) is that
    building them can blow up exponentially in the fixed variable order —
    multipliers being the canonical offender. *)

type verdict =
  | Equivalent
  | Counterexample of (string * bool) list
      (** an input valuation (by input name) on which the outputs differ *)
  | Node_limit
      (** construction exceeded the node budget: the blow-up case *)

(** [check ?node_limit c outs1 outs2] compares two output lists of the
    same circuit (default budget: one million nodes). *)
val check :
  ?node_limit:int ->
  Circuit.Netlist.t ->
  Circuit.Netlist.node list ->
  Circuit.Netlist.node list ->
  verdict

(** [tautology_nodes ?node_limit c out] is the BDD node count of a single
    output, for profiling blow-up (None when over budget). *)
val output_size :
  ?node_limit:int -> Circuit.Netlist.t -> Circuit.Netlist.node -> int option
