type node = int

(* nodes 0 and 1 are the constants; internal node i has a variable and
   two children.  Reduction invariants: low <> high, and (var, low, high)
   triples are unique. *)
exception Node_limit_reached

type man = {
  nvars : int;
  node_limit : int;
  var_of : int Sat.Vec.t;     (* per node: branching variable (0 for consts) *)
  low_of : int Sat.Vec.t;
  high_of : int Sat.Vec.t;
  unique : (int * int * int, node) Hashtbl.t;
  apply_cache : (int * node * node, node) Hashtbl.t;
  neg_cache : (node, node) Hashtbl.t;
}

let bot_id = 0
let top_id = 1

let create ?(node_limit = max_int) ~nvars () =
  let m = {
    nvars;
    node_limit;
    var_of = Sat.Vec.create ~dummy:0;
    low_of = Sat.Vec.create ~dummy:0;
    high_of = Sat.Vec.create ~dummy:0;
    unique = Hashtbl.create 4096;
    apply_cache = Hashtbl.create 4096;
    neg_cache = Hashtbl.create 1024;
  } in
  (* constants occupy slots 0 and 1; their "variable" sorts after all
     real variables so cofactoring logic can treat them uniformly *)
  for _ = 0 to 1 do
    Sat.Vec.push m.var_of (nvars + 1);
    Sat.Vec.push m.low_of 0;
    Sat.Vec.push m.high_of 0
  done;
  m

let bot _ = bot_id
let top _ = top_id

let mk m v low high =
  if low = high then low
  else
    match Hashtbl.find_opt m.unique (v, low, high) with
    | Some n -> n
    | None ->
      let n = Sat.Vec.length m.var_of in
      if n - 2 >= m.node_limit then raise Node_limit_reached;
      Sat.Vec.push m.var_of v;
      Sat.Vec.push m.low_of low;
      Sat.Vec.push m.high_of high;
      Hashtbl.replace m.unique (v, low, high) n;
      n

let check_var m v =
  if v < 1 || v > m.nvars then invalid_arg "Robdd: variable out of range"

let var m v =
  check_var m v;
  mk m v bot_id top_id

let nvar m v =
  check_var m v;
  mk m v top_id bot_id

let node_var m n = Sat.Vec.get m.var_of n
let node_low m n = Sat.Vec.get m.low_of n
let node_high m n = Sat.Vec.get m.high_of n

(* binary boolean operators encoded for the apply cache key *)
let op_and = 0
let op_or = 1
let op_xor = 2

let apply_const op a b =
  (* results when both operands are constants *)
  let ab = a = top_id and bb = b = top_id in
  let r =
    if op = op_and then ab && bb
    else if op = op_or then ab || bb
    else ab <> bb
  in
  if r then top_id else bot_id

(* terminal shortcuts for one constant operand *)
let shortcut op a b =
  if a > top_id && b > top_id then None
  else if a <= top_id && b <= top_id then Some (apply_const op a b)
  else begin
    (* exactly one constant *)
    let c, other = if a <= top_id then (a, b) else (b, a) in
    if op = op_and then Some (if c = bot_id then bot_id else other)
    else if op = op_or then Some (if c = top_id then top_id else other)
    else (* xor *) if c = bot_id then Some other
    else None (* xor with top = negation: handled by caller *)
  end

let rec neg m n =
  if n = bot_id then top_id
  else if n = top_id then bot_id
  else
    match Hashtbl.find_opt m.neg_cache n with
    | Some r -> r
    | None ->
      let r = mk m (node_var m n) (neg m (node_low m n)) (neg m (node_high m n)) in
      Hashtbl.replace m.neg_cache n r;
      Hashtbl.replace m.neg_cache r n;
      r

let rec apply m op a b =
  match shortcut op a b with
  | Some r -> r
  | None ->
    if op = op_xor && (a = top_id || b = top_id) then
      neg m (if a = top_id then b else a)
    else begin
      (* commutative: normalise the cache key *)
      let a, b = if a <= b then (a, b) else (b, a) in
      if op = op_and && a = b then a
      else if op = op_or && a = b then a
      else if op = op_xor && a = b then bot_id
      else
        match Hashtbl.find_opt m.apply_cache (op, a, b) with
        | Some r -> r
        | None ->
          let va = node_var m a and vb = node_var m b in
          let v = min va vb in
          let a0, a1 =
            if va = v then (node_low m a, node_high m a) else (a, a)
          in
          let b0, b1 =
            if vb = v then (node_low m b, node_high m b) else (b, b)
          in
          let r = mk m v (apply m op a0 b0) (apply m op a1 b1) in
          Hashtbl.replace m.apply_cache (op, a, b) r;
          r
    end

let and_ m a b = apply m op_and a b
let or_ m a b = apply m op_or a b
let xor_ m a b = apply m op_xor a b

let ite m c t e = or_ m (and_ m c t) (and_ m (neg m c) e)

let rec restrict m n ~var ~value =
  if n <= top_id then n
  else begin
    let v = node_var m n in
    if v > var then n
    else if v = var then
      if value then node_high m n else node_low m n
    else
      mk m v
        (restrict m (node_low m n) ~var ~value)
        (restrict m (node_high m n) ~var ~value)
  end

let exists m v n =
  or_ m (restrict m n ~var:v ~value:false) (restrict m n ~var:v ~value:true)

let equal (a : node) (b : node) = a = b
let is_top _ n = n = top_id
let is_bot _ n = n = bot_id

let eval m n valuation =
  let rec go n =
    if n = top_id then true
    else if n = bot_id then false
    else
      let v = node_var m n in
      let b = Option.value ~default:false (List.assoc_opt v valuation) in
      go (if b then node_high m n else node_low m n)
  in
  go n

let sat_count m n =
  let memo = Hashtbl.create 256 in
  (* count assignments of variables in [from .. nvars] satisfying n *)
  let rec go n from =
    if n = bot_id then 0.0
    else if n = top_id then Float.pow 2.0 (float_of_int (m.nvars - from + 1))
    else
      let key = (n, from) in
      match Hashtbl.find_opt memo key with
      | Some r -> r
      | None ->
        let v = node_var m n in
        let skipped = Float.pow 2.0 (float_of_int (v - from)) in
        let r =
          skipped
          *. (go (node_low m n) (v + 1) +. go (node_high m n) (v + 1))
        in
        Hashtbl.replace memo key r;
        r
  in
  go n 1

let any_sat m n =
  if n = bot_id then None
  else begin
    let rec go n acc =
      if n = top_id then List.rev acc
      else if node_high m n <> bot_id then
        go (node_high m n) ((node_var m n, true) :: acc)
      else go (node_low m n) ((node_var m n, false) :: acc)
    in
    Some (go n [])
  end

let size m n =
  let seen = Hashtbl.create 256 in
  let rec go n =
    if n > top_id && not (Hashtbl.mem seen n) then begin
      Hashtbl.replace seen n ();
      go (node_low m n);
      go (node_high m n)
    end
  in
  go n;
  Hashtbl.length seen

let num_nodes m = Sat.Vec.length m.var_of - 2

let of_netlist_mapped m c outs ~var_of_input =
  let table = Array.make (max 1 (Circuit.Netlist.num_nodes c)) bot_id in
  Circuit.Netlist.iter_nodes
    (fun n g ->
      let get x = table.(Circuit.Netlist.node_id x) in
      let r =
        match g with
        | Circuit.Netlist.G_input name -> var m (var_of_input name)
        | Circuit.Netlist.G_const b -> if b then top_id else bot_id
        | Circuit.Netlist.G_not a -> neg m (get a)
        | Circuit.Netlist.G_and (a, b) -> and_ m (get a) (get b)
        | Circuit.Netlist.G_or (a, b) -> or_ m (get a) (get b)
        | Circuit.Netlist.G_xor (a, b) -> xor_ m (get a) (get b)
      in
      table.(Circuit.Netlist.node_id n) <- r)
    c;
  List.map (fun n -> table.(Circuit.Netlist.node_id n)) outs

let of_netlist m c outs =
  if Circuit.Netlist.num_inputs c > m.nvars then
    invalid_arg "Robdd.of_netlist: not enough BDD variables";
  let input_var = Hashtbl.create 16 in
  List.iteri
    (fun i name -> Hashtbl.replace input_var name (i + 1))
    (Circuit.Netlist.input_names c);
  of_netlist_mapped m c outs ~var_of_input:(fun name ->
      Hashtbl.find input_var name)

let to_netlist m n c ~input_of_var =
  let memo = Hashtbl.create 256 in
  let rec go n =
    if n = top_id then Circuit.Netlist.const c true
    else if n = bot_id then Circuit.Netlist.const c false
    else
      match Hashtbl.find_opt memo n with
      | Some x -> x
      | None ->
        let sel = input_of_var (node_var m n) in
        let x =
          Circuit.Netlist.mux c ~sel ~if_true:(go (node_high m n))
            ~if_false:(go (node_low m n))
        in
        Hashtbl.replace memo n x;
        x
  in
  go n

let of_cnf m f =
  let acc = ref top_id in
  Sat.Cnf.iter_clauses
    (fun _ c ->
      let cl =
        Array.fold_left
          (fun acc l ->
            let b =
              if Sat.Lit.is_neg l then nvar m (Sat.Lit.var l)
              else var m (Sat.Lit.var l)
            in
            or_ m acc b)
          bot_id c
      in
      acc := and_ m !acc cl)
    f;
  !acc

