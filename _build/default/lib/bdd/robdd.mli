(** Reduced ordered binary decision diagrams — the symbolic-verification
    technology SAT displaced for the workloads in the paper (its BMC
    citation [2] is literally "Symbolic Model Checking without BDDs").
    Implemented as a canonical DAG with a unique table and an apply
    cache, so semantic equality is pointer equality: the classic BDD
    equivalence-checking baseline the benches compare the SAT+checker
    flow against.

    Variables are [1 .. nvars] and the variable order is fixed to the
    numeric order at manager creation (the multiplier benches demonstrate
    the textbook consequence). *)

type man
type node

(** Raised by any operation that would allocate past the manager's node
    limit — BDD equivalence checking on multiplier-like circuits blows up
    exponentially (the textbook contrast with the SAT flow), and callers
    need a graceful abort. *)
exception Node_limit_reached

(** [create ?node_limit ~nvars ()] makes a manager for variables
    [1 .. nvars]; allocations beyond [node_limit] raise
    {!Node_limit_reached}. *)
val create : ?node_limit:int -> nvars:int -> unit -> man

(** the constant-false function *)
val bot : man -> node

(** the constant-true function *)
val top : man -> node

(** [var m v] / [nvar m v] are the positive / negative literal functions.
    @raise Invalid_argument when [v] is out of range. *)
val var : man -> Sat.Lit.var -> node
val nvar : man -> Sat.Lit.var -> node

val neg : man -> node -> node
val and_ : man -> node -> node -> node
val or_ : man -> node -> node -> node
val xor_ : man -> node -> node -> node
val ite : man -> node -> node -> node -> node

(** [restrict m n ~var ~value] is the cofactor n|_{var=value}. *)
val restrict : man -> node -> var:Sat.Lit.var -> value:bool -> node

(** [exists m v n] is ∃v. n. *)
val exists : man -> Sat.Lit.var -> node -> node

(** Canonicity: equal functions are the same node. *)
val equal : node -> node -> bool

val is_top : man -> node -> bool
val is_bot : man -> node -> bool

(** [eval m n valuation] evaluates the function (missing variables
    default to false). *)
val eval : man -> node -> (Sat.Lit.var * bool) list -> bool

(** [sat_count m n] counts satisfying assignments over all [nvars]
    variables (as a float: counts overflow 63 bits quickly). *)
val sat_count : man -> node -> float

(** [any_sat m n] is a partial satisfying valuation, or [None] for the
    constant-false node. *)
val any_sat : man -> node -> (Sat.Lit.var * bool) list option

(** [size m n] counts the internal nodes reachable from [n]. *)
val size : man -> node -> int

(** [num_nodes m] is the total allocation, the blow-up measure. *)
val num_nodes : man -> int

(** [of_netlist m c outs] builds the BDDs of circuit outputs (inputs are
    mapped to BDD variables by declaration order: the i-th declared input
    becomes variable i+1).
    @raise Invalid_argument when the circuit has more inputs than the
    manager has variables. *)
val of_netlist : man -> Circuit.Netlist.t -> Circuit.Netlist.node list -> node list

(** [of_netlist_mapped m c outs ~var_of_input] is {!of_netlist} with an
    explicit input-name → BDD-variable mapping. *)
val of_netlist_mapped :
  man ->
  Circuit.Netlist.t ->
  Circuit.Netlist.node list ->
  var_of_input:(string -> Sat.Lit.var) ->
  node list

(** [of_cnf m f] conjoins the clauses of [f]. *)
val of_cnf : man -> Sat.Cnf.t -> node

(** [to_netlist m n c ~input_of_var] synthesises the function back into a
    circuit as a mux tree over the BDD structure; [input_of_var] supplies
    the circuit node standing for each BDD variable. *)
val to_netlist :
  man ->
  node ->
  Circuit.Netlist.t ->
  input_of_var:(Sat.Lit.var -> Circuit.Netlist.node) ->
  Circuit.Netlist.node

