type align = Left | Right

let render ~headers ?align rows =
  let ncols =
    List.fold_left (fun acc r -> max acc (List.length r)) (List.length headers) rows
  in
  let aligns =
    match align with
    | None -> Array.make ncols Right
    | Some a ->
      let arr = Array.make ncols Right in
      List.iteri (fun i x -> if i < ncols then arr.(i) <- x) a;
      arr
  in
  let cell r i = match List.nth_opt r i with Some c -> c | None -> "" in
  let widths = Array.make ncols 0 in
  let measure r =
    List.iteri
      (fun i c -> if i < ncols then widths.(i) <- max widths.(i) (String.length c))
      r
  in
  measure headers;
  List.iter measure rows;
  let buf = Buffer.create 1024 in
  let emit_row r =
    for i = 0 to ncols - 1 do
      let c = cell r i in
      let pad = widths.(i) - String.length c in
      (match aligns.(i) with
       | Left ->
         Buffer.add_string buf c;
         Buffer.add_string buf (String.make pad ' ')
       | Right ->
         Buffer.add_string buf (String.make pad ' ');
         Buffer.add_string buf c);
      if i < ncols - 1 then Buffer.add_string buf "  "
    done;
    Buffer.add_char buf '\n'
  in
  emit_row headers;
  let total =
    Array.fold_left ( + ) 0 widths + (2 * (ncols - 1))
  in
  Buffer.add_string buf (String.make (max total 1) '-');
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let fmt_int = string_of_int

let fmt_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let fmt_pct x = Printf.sprintf "%.1f%%" (100.0 *. x)

let fmt_kb bytes = Printf.sprintf "%d" ((bytes + 1023) / 1024)

let print t =
  print_string t;
  print_newline ()
