lib/harness/table.mli:
