lib/harness/meter.mli:
