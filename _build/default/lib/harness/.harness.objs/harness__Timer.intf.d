lib/harness/timer.mli:
