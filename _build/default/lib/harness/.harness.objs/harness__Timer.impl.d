lib/harness/timer.ml: Sys
