lib/harness/meter.ml:
