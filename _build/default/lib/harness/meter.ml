type t = {
  mutable live : int;
  mutable peak : int;
  limit : int option;
}

exception Out_of_memory_simulated of { limit_words : int; wanted : int }

let create ?limit_words () = { live = 0; peak = 0; limit = limit_words }

let alloc m words =
  assert (words >= 0);
  let next = m.live + words in
  (match m.limit with
   | Some limit when next > limit ->
     raise (Out_of_memory_simulated { limit_words = limit; wanted = next })
   | Some _ | None -> ());
  m.live <- next;
  if next > m.peak then m.peak <- next

let free m words =
  assert (words >= 0);
  m.live <- max 0 (m.live - words)

let live_words m = m.live
let peak_words m = m.peak
let peak_bytes m = 8 * m.peak
