(** Plain-text table rendering for the experiment reports — each bench
    prints rows shaped like the paper's Tables 1–3. *)

type align = Left | Right

(** [render ~headers ?align rows] lays out a column-aligned table with a
    header rule.  Missing cells render empty; [align] defaults to [Right]
    for every column (numeric tables). *)
val render : headers:string list -> ?align:align list -> string list list -> string

(** Number formatting helpers used across the tables. *)
val fmt_int : int -> string
val fmt_float : ?decimals:int -> float -> string
val fmt_pct : float -> string
val fmt_kb : int -> string

(** [print t] writes a rendered table to stdout followed by a newline. *)
val print : string -> unit
