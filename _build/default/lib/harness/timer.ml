let time f =
  let t0 = Sys.time () in
  let x = f () in
  let t1 = Sys.time () in
  (x, t1 -. t0)

let time_only f = snd (time f)
