(** Simulated memory accounting.  The paper's Table 2 reports peak memory
    of the two checkers on a fixed 800 MB budget; absolute process memory
    is allocator- and GC-dependent, so we reproduce the comparison with an
    exact logical meter: every clause a checker holds is charged by its
    word footprint, every release credited.  [peak] is the high-water
    mark, and an optional [limit] turns the paper's "memory out" rows into
    a catchable {!Out_of_memory_simulated}. *)

type t

exception Out_of_memory_simulated of { limit_words : int; wanted : int }

(** [create ?limit_words ()] — when [limit_words] is given, an allocation
    pushing [live] beyond it raises. *)
val create : ?limit_words:int -> unit -> t

(** [alloc m words] charges an allocation.  @raise Out_of_memory_simulated
    when over the configured limit. *)
val alloc : t -> int -> unit

(** [free m words] credits a release; never below zero (programming errors
    assert in debug builds). *)
val free : t -> int -> unit

val live_words : t -> int
val peak_words : t -> int

(** [peak_bytes m] converts the peak to bytes (8-byte words), for
    table rows comparable with the paper's KB columns. *)
val peak_bytes : t -> int
