(** CPU-time measurement for the experiment tables.  [Sys.time] (process
    CPU seconds) is used rather than wall clock: the benches are
    single-threaded and CPU time is robust against machine noise, matching
    how solver papers of the period reported runtimes. *)

(** [time f] runs [f ()] and returns its result with elapsed CPU seconds. *)
val time : (unit -> 'a) -> 'a * float

(** [time_only f] is the elapsed CPU seconds of [f ()], discarding the
    result. *)
val time_only : (unit -> 'a) -> float
