lib/pipeline/bmc_engine.mli: Checker Circuit Solver
