lib/pipeline/unsat_core.mli: Checker Sat Solver
