lib/pipeline/muc.mli: Sat Solver Stdlib
