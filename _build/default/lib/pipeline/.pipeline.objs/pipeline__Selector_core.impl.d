lib/pipeline/selector_core.ml: Array Int List Sat Solver
