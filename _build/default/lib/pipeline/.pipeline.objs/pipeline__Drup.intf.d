lib/pipeline/drup.mli: Checker Sat Trace
