lib/pipeline/interpolant.ml: Array Checker Circuit Hashtbl List Printf Sat Solver String Trace Validate
