lib/pipeline/validate.ml: Checker Harness Sat Solver String Trace
