lib/pipeline/drup.ml: Array Buffer Checker Hashtbl List Sat String Trace
