lib/pipeline/unsat_core.ml: Array Checker List Sat Solver Trace Validate
