lib/pipeline/validate.mli: Checker Harness Sat Solver Trace
