lib/pipeline/bmc_engine.ml: Array Bdd Checker Circuit Hashtbl Interpolant List Printf Sat Solver String Trace Validate
