lib/pipeline/interpolant.mli: Checker Circuit Sat Solver Trace
