lib/pipeline/selector_core.mli: Sat Solver Stdlib
