lib/pipeline/muc.ml: Int List Sat Solver Unsat_core
