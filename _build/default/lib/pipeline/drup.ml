module D = Checker.Diagnostics

(* Rebuild every learned clause in stream order (the breadth-first
   discipline) and record its literals. *)
let of_trace f source =
  let num_original = Sat.Cnf.nclauses f in
  let engine = Checker.Resolution.create_engine ~nvars:(Sat.Cnf.nvars f) in
  let built = Hashtbl.create 1024 in
  let order = ref [] in
  let is_original id = id >= 1 && id <= num_original in
  let fetch id =
    match Hashtbl.find_opt built id with
    | Some c -> c
    | None ->
      if is_original id then Sat.Cnf.clause f (id - 1)
      else D.fail (D.Unknown_clause { context = "drup conversion"; id })
  in
  let saw_header = ref false in
  try
    Trace.Reader.iter source (fun e ->
        match e with
        | Trace.Event.Header h ->
          saw_header := true;
          if
            h.nvars <> Sat.Cnf.nvars f || h.num_original <> num_original
          then
            D.fail
              (D.Header_mismatch
                 { trace_nvars = h.nvars; trace_norig = h.num_original;
                   formula_nvars = Sat.Cnf.nvars f;
                   formula_norig = num_original })
        | Trace.Event.Learned l ->
          if is_original l.id then D.fail (D.Shadows_original l.id);
          if Hashtbl.mem built l.id then D.fail (D.Duplicate_definition l.id);
          let c, _steps =
            Checker.Resolution.chain engine ~context:"drup conversion"
              ~fetch ~learned_id:l.id l.sources
          in
          Hashtbl.replace built l.id c;
          order := c :: !order
        | Trace.Event.Level0 _ | Trace.Event.Final_conflict _ -> ());
    if not !saw_header then D.fail D.Missing_header;
    Ok (List.rev ([||] :: !order))
  with
  | D.Check_failed d -> Error d
  | Trace.Reader.Parse_error m -> Error (D.Malformed_trace m)

let to_string derivation =
  let buf = Buffer.create 4096 in
  List.iter
    (fun c ->
      Array.iter
        (fun l ->
          Buffer.add_string buf (Sat.Lit.to_string l);
          Buffer.add_char buf ' ')
        c;
      Buffer.add_string buf "0\n")
    derivation;
  Buffer.contents buf

let parse s =
  let clauses = ref [] in
  let cur = ref [] in
  String.split_on_char '\n' s
  |> List.iter (fun line ->
         let line = String.trim line in
         if line <> "" && line.[0] <> 'c' then
           String.split_on_char ' ' line
           |> List.iter (fun w ->
                  if w <> "" then
                    match int_of_string_opt w with
                    | Some 0 ->
                      clauses := Sat.Clause.of_lits (List.rev !cur) :: !clauses;
                      cur := []
                    | Some d -> cur := Sat.Lit.of_int d :: !cur
                    | None -> failwith ("Drup.parse: bad token " ^ w)));
  if !cur <> [] then failwith "Drup.parse: trailing literals";
  List.rev !clauses
