type result = {
  clause_indices : int list;
  formula : Sat.Cnf.t;
}

let extract ?config f =
  let nvars = Sat.Cnf.nvars f in
  let m = Sat.Cnf.nclauses f in
  (* selector variable for clause i (0-based) is nvars + i + 1 *)
  let selector i = nvars + i + 1 in
  let augmented = Sat.Cnf.create (nvars + m) in
  Sat.Cnf.iter_clauses
    (fun i c ->
      let c' = Array.append c [| Sat.Lit.neg (selector i) |] in
      ignore (Sat.Cnf.add_clause augmented c'))
    f;
  let session = Solver.Cdcl.Incremental.create ?config augmented in
  let assumptions = List.init m (fun i -> Sat.Lit.pos (selector i)) in
  match Solver.Cdcl.Incremental.solve ~assumptions session with
  | Solver.Cdcl.A_sat _ -> Error `Sat
  | Solver.Cdcl.A_unsat ->
    (* cannot happen: with all selectors free the augmented formula is
       satisfiable; be conservative and report the full set *)
    let clause_indices = List.init m (fun i -> i) in
    Ok { clause_indices; formula = Sat.Cnf.copy f }
  | Solver.Cdcl.A_unsat_assumptions failed ->
    let clause_indices =
      List.filter_map
        (fun l ->
          let v = Sat.Lit.var l in
          if v > nvars && not (Sat.Lit.is_neg l) then Some (v - nvars - 1)
          else None)
        failed
      |> List.sort_uniq Int.compare
    in
    Ok { clause_indices; formula = Sat.Cnf.restrict_to f clause_indices }
