(** Unsatisfiable cores via assumption selectors — the technique that
    succeeded the paper's trace-based extraction in MiniSat-era tooling,
    implemented here to cross-validate §4's results.

    Every clause [c_i] is augmented to [c_i ∨ ¬s_i] with a fresh selector
    variable [s_i]; solving under the assumptions [s_1 … s_m] makes the
    augmented formula equisatisfiable with the original, and when the
    solver answers "unsatisfiable under assumptions" the failed-assumption
    subset ({!Solver.Cdcl.Incremental}) names exactly a core of original
    clauses — no proof trace needed, at the cost of m extra variables.

    The test suite checks that both §4 extraction and this method return
    genuine unsatisfiable cores of the same instances. *)

type result = {
  clause_indices : int list;  (** 0-based indices into the input formula *)
  formula : Sat.Cnf.t;        (** the core as a formula *)
}

(** [extract ?config f] is [Error `Sat] when [f] is satisfiable. *)
val extract :
  ?config:Solver.Cdcl.config ->
  Sat.Cnf.t ->
  (result, [ `Sat ]) Stdlib.result
