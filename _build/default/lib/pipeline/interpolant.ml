module N = Circuit.Netlist
module D = Checker.Diagnostics

type t = {
  circuit : N.t;
  root : N.node;
  shared_vars : Sat.Lit.var list;
  input_of_var : Sat.Lit.var -> N.node;
}

(* annotated clause: literals plus McMillan partial interpolant *)
type ann = { lits : Sat.Clause.t; itp : N.node }

type state = {
  formula : Sat.Cnf.t;
  num_original : int;
  a_side : bool array;          (* per 0-based clause index *)
  in_a : bool array;            (* per var: occurs in an A clause *)
  in_b : bool array;            (* per var: occurs in a B clause *)
  circuit : N.t;
  inputs : (Sat.Lit.var, N.node) Hashtbl.t;
  engine : Checker.Resolution.engine;
  sources : (int, int array) Hashtbl.t;
  built : (int, ann) Hashtbl.t;
  l0 : Checker.Level0.t;
  mutable final_conflict : int option;
}

let is_original st id = id >= 1 && id <= st.num_original

let input_node st v =
  match Hashtbl.find_opt st.inputs v with
  | Some n -> n
  | None ->
    let n = N.input st.circuit (Printf.sprintf "v%d" v) in
    Hashtbl.replace st.inputs v n;
    n

let lit_node st l =
  let n = input_node st (Sat.Lit.var l) in
  if Sat.Lit.is_neg l then N.not_ st.circuit n else n

(* McMillan base case for an original clause *)
let base_ann st id =
  let lits = Sat.Cnf.clause st.formula (id - 1) in
  let itp =
    if st.a_side.(id - 1) then
      (* disjunction of the literals over B-shared variables *)
      N.big_or st.circuit
        (Array.to_list lits
        |> List.filter (fun l -> st.in_b.(Sat.Lit.var l))
        |> List.map (lit_node st))
    else N.const st.circuit true
  in
  { lits; itp }

(* McMillan resolution rule *)
let combine st pivot i1 i2 =
  (* "local to A" = occurs in A and not in B *)
  if st.in_a.(pivot) && not st.in_b.(pivot) then N.or_ st.circuit i1 i2
  else N.and_ st.circuit i1 i2

let resolve_ann st ~context ~c1_id ~c2_id a1 a2 =
  let lits, pivot =
    Checker.Resolution.resolve st.engine ~context ~c1_id ~c2_id a1.lits a2.lits
  in
  { lits; itp = combine st pivot a1.itp a2.itp }

(* annotated version of the checker's recursive_build (explicit stack) *)
let rec_build st root =
  let stack = ref [ root ] in
  let in_progress = Hashtbl.create 32 in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | id :: rest ->
      if Hashtbl.mem st.built id then begin
        Hashtbl.remove in_progress id;
        stack := rest
      end
      else if is_original st id then begin
        Hashtbl.replace st.built id (base_ann st id);
        stack := rest
      end
      else begin
        match Hashtbl.find_opt st.sources id with
        | None ->
          D.fail (D.Unknown_clause { context = "interpolation build"; id })
        | Some srcs ->
          let missing = ref 0 in
          Array.iter
            (fun s ->
              if !missing = 0 && not (Hashtbl.mem st.built s) then
                if is_original st s then
                  Hashtbl.replace st.built s (base_ann st s)
                else missing := s)
            srcs;
          if !missing = 0 then begin
            if Array.length srcs = 0 then D.fail (D.Empty_source_list id);
            let get s = Hashtbl.find st.built s in
            let ann = ref (get srcs.(0)) in
            let cur_id = ref srcs.(0) in
            for i = 1 to Array.length srcs - 1 do
              ann :=
                resolve_ann st ~context:"interpolation build" ~c1_id:!cur_id
                  ~c2_id:srcs.(i) !ann (get srcs.(i));
              cur_id := id
            done;
            Hashtbl.replace st.built id !ann;
            Hashtbl.remove in_progress id;
            stack := rest
          end
          else begin
            if Hashtbl.mem in_progress !missing then
              D.fail (D.Cyclic_definition !missing);
            Hashtbl.replace in_progress id ();
            Hashtbl.replace in_progress !missing ();
            stack := !missing :: !stack
          end
      end
  done;
  Hashtbl.find st.built root

(* annotated version of Final_chain.run, with the same side checks *)
let final_chain st conf_id =
  let start = rec_build st conf_id in
  Array.iter
    (fun l ->
      if not (Checker.Level0.lit_false st.l0 l) then
        D.fail (D.Final_literal_not_false { clause_id = conf_id; lit = l }))
    start.lits;
  let cur = ref start in
  let cur_id = ref conf_id in
  while Array.length !cur.lits > 0 do
    (* reverse chronological pivot choice *)
    let v = ref (-1) and best = ref (-1) in
    Array.iter
      (fun l ->
        let u = Sat.Lit.var l in
        let o = Checker.Level0.order st.l0 u in
        if o > !best then begin
          best := o;
          v := u
        end)
      !cur.lits;
    let ante_id = Checker.Level0.ante st.l0 !v in
    let ante = rec_build st ante_id in
    (match Checker.Level0.check_antecedent st.l0 ~var:!v ante.lits with
     | None -> ()
     | Some reason ->
       D.fail (D.Antecedent_mismatch { var = !v; ante = ante_id; reason }));
    let next =
      resolve_ann st ~context:"interpolation chain" ~c1_id:!cur_id
        ~c2_id:ante_id !cur ante
    in
    cur := next;
    cur_id := -1
  done;
  !cur.itp

let load st source =
  let saw_header = ref false in
  Trace.Reader.iter source (fun e ->
      match e with
      | Trace.Event.Header h ->
        saw_header := true;
        if
          h.nvars <> Sat.Cnf.nvars st.formula
          || h.num_original <> Sat.Cnf.nclauses st.formula
        then
          D.fail
            (D.Header_mismatch
               { trace_nvars = h.nvars; trace_norig = h.num_original;
                 formula_nvars = Sat.Cnf.nvars st.formula;
                 formula_norig = Sat.Cnf.nclauses st.formula })
      | Trace.Event.Learned l ->
        if is_original st l.id then D.fail (D.Shadows_original l.id);
        if Hashtbl.mem st.sources l.id then
          D.fail (D.Duplicate_definition l.id);
        Hashtbl.replace st.sources l.id l.sources
      | Trace.Event.Level0 v ->
        Checker.Level0.add st.l0 ~var:v.var ~value:v.value ~ante:v.ante
      | Trace.Event.Final_conflict id -> st.final_conflict <- Some id);
  if not !saw_header then D.fail D.Missing_header

let compute formula ~a_indices source =
  let nvars = Sat.Cnf.nvars formula in
  let nclauses = Sat.Cnf.nclauses formula in
  let a_side = Array.make nclauses false in
  List.iter
    (fun i ->
      if i < 0 || i >= nclauses then invalid_arg "Interpolant: bad A index";
      a_side.(i) <- true)
    a_indices;
  let in_a = Array.make (nvars + 1) false in
  let in_b = Array.make (nvars + 1) false in
  Sat.Cnf.iter_clauses
    (fun i c ->
      let mark = if a_side.(i) then in_a else in_b in
      Array.iter (fun l -> mark.(Sat.Lit.var l) <- true) c)
    formula;
  let st = {
    formula;
    num_original = nclauses;
    a_side;
    in_a;
    in_b;
    circuit = N.create ();
    inputs = Hashtbl.create 64;
    engine = Checker.Resolution.create_engine ~nvars;
    sources = Hashtbl.create 1024;
    built = Hashtbl.create 1024;
    l0 = Checker.Level0.create ();
    final_conflict = None;
  } in
  try
    load st source;
    let conf_id =
      match st.final_conflict with
      | Some id -> id
      | None -> D.fail D.Missing_final_conflict
    in
    let root = final_chain st conf_id in
    let shared_vars =
      List.filter (fun v -> in_a.(v) && in_b.(v))
        (List.init nvars (fun i -> i + 1))
    in
    Ok {
      circuit = st.circuit;
      root;
      shared_vars;
      input_of_var =
        (fun v ->
          match Hashtbl.find_opt st.inputs v with
          | Some n -> n
          | None -> raise Not_found);
    }
  with
  | D.Check_failed d -> Error d
  | Trace.Reader.Parse_error m -> Error (D.Malformed_trace m)

let of_formulas ?config a b =
  (* conjoin over a common variable space; A clauses first *)
  let nvars = max (Sat.Cnf.nvars a) (Sat.Cnf.nvars b) in
  let combined = Sat.Cnf.create nvars in
  Sat.Cnf.iter_clauses (fun _ c -> ignore (Sat.Cnf.add_clause combined c)) a;
  Sat.Cnf.iter_clauses (fun _ c -> ignore (Sat.Cnf.add_clause combined c)) b;
  let result, _stats, trace = Validate.solve_with_trace ?config combined in
  match result with
  | Solver.Cdcl.Sat m -> Error (`Sat m)
  | Solver.Cdcl.Unsat -> (
    let a_indices = List.init (Sat.Cnf.nclauses a) (fun i -> i) in
    match compute combined ~a_indices (Trace.Reader.From_string trace) with
    | Ok itp -> Ok itp
    | Error d -> Error (`Check_failed d))

let eval (itp : t) valuation =
  let inputs =
    List.filter_map
      (fun v ->
        match itp.input_of_var v with
        | n ->
          ignore n;
          let value =
            match List.assoc_opt v valuation with
            | Some b -> b
            | None -> false
          in
          Some (Printf.sprintf "v%d" v, value)
        | exception Not_found -> None)
      itp.shared_vars
  in
  (* inputs may also exist for non-shared A-local vars never pruned from
     the circuit; supply every declared input *)
  let declared = N.input_names itp.circuit in
  let inputs =
    List.map
      (fun name ->
        match List.assoc_opt name inputs with
        | Some b -> (name, b)
        | None -> (
          (* name is "v<var>" *)
          let v = int_of_string (String.sub name 1 (String.length name - 1)) in
          match List.assoc_opt v valuation with
          | Some b -> (name, b)
          | None -> (name, false)))
      declared
  in
  Circuit.Sim.eval1 itp.circuit ~inputs itp.root

let size (itp : t) = N.num_nodes itp.circuit
