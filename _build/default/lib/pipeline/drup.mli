(** Conversion of resolve-source traces into DRUP derivations.

    The paper's trace records the {e sources} of every learned clause; a
    DRUP file records the {e literals} of every learned clause and lets
    the checker re-derive them by reverse unit propagation
    ({!Checker.Rup}).  Rebuilding each learned clause from its sources —
    exactly what the breadth-first checker does — and writing the
    literals out therefore converts one proof format into the other,
    connecting this paper's format to what drat-trim consumes today. *)

(** [of_trace f source] is the DRUP derivation: every learned clause's
    literals in trace order, terminated by the empty clause.  The trace
    is validated as it is converted. *)
val of_trace :
  Sat.Cnf.t ->
  Trace.Reader.source ->
  (Sat.Clause.t list, Checker.Diagnostics.failure) result

(** [to_string derivation] renders standard DRUP text: one clause per
    line, DIMACS literals, 0-terminated (the final "0" line is the empty
    clause). *)
val to_string : Sat.Clause.t list -> string

(** [parse s] reads DRUP text back (used by tests and the CLI).
    @raise Failure on malformed input. *)
val parse : string -> Sat.Clause.t list
