(** Craig interpolation from checked resolution proofs — the natural next
    "other application" beyond the paper's §4 unsat cores, and the one
    that made proof-producing SAT engines central to unbounded model
    checking (McMillan, CAV 2003, published the same year as this paper).

    Given a partition of the original clauses into [A] and [B] with
    [A ∧ B] unsatisfiable, the resolution proof recorded in the trace is
    annotated bottom-up (McMillan's rules):

    - an input clause from [A] contributes the disjunction of its
      B-shared literals (false if none);
    - an input clause from [B] contributes true;
    - a resolution on a pivot local to [A] joins the operands with OR,
      any other pivot with AND.

    The empty clause's annotation is a circuit [I] — built on
    {!Circuit.Netlist} — such that [A ⊨ I], [I ∧ B] is unsatisfiable,
    and [I] mentions only variables common to [A] and [B].  All three
    properties are re-checked by the test suite using the solver itself. *)

type t = {
  circuit : Circuit.Netlist.t;
  root : Circuit.Netlist.node;                      (** the interpolant *)
  shared_vars : Sat.Lit.var list;                   (** vars(A) ∩ vars(B) *)
  input_of_var : Sat.Lit.var -> Circuit.Netlist.node;
      (** primary input standing for a shared variable.
          @raise Not_found on non-shared variables *)
}

(** [compute f ~a_indices source] annotates the proof in [source]
    (validated as it is traversed) for the partition where [a_indices]
    (0-based, deduplicated) select the A-side clauses of [f] and the rest
    form B. *)
val compute :
  Sat.Cnf.t ->
  a_indices:int list ->
  Trace.Reader.source ->
  (t, Checker.Diagnostics.failure) result

(** [of_formulas a b] is the convenience wrapper: conjoins [a] and [b]
    over a shared variable space, solves with tracing, and interpolates.
    [Error `Sat] with a model when the conjunction is satisfiable. *)
val of_formulas :
  ?config:Solver.Cdcl.config ->
  Sat.Cnf.t ->
  Sat.Cnf.t ->
  (t, [ `Sat of Sat.Assignment.t
      | `Check_failed of Checker.Diagnostics.failure ]) result

(** [eval itp valuation] evaluates the interpolant under a valuation of
    the shared variables (missing variables default to false). *)
val eval : t -> (Sat.Lit.var * bool) list -> bool

(** [size itp] is the node count of the interpolant circuit. *)
val size : t -> int
