(** Bounded and unbounded safety checking of {!Circuit.Transition}
    systems — the applications stacked on top of the validated SAT flow.

    {b BMC} (the paper's benchmark family [2]): unroll the transition
    relation k steps from the initial state, assert the property
    violation at step k, and ask SAT; every UNSAT answer is validated
    through the depth-first checker before being trusted, exactly the
    paper's deployment story.

    {b Interpolation-based unbounded checking} (McMillan 2003): when the
    BMC instance is UNSAT, the checked proof yields a Craig interpolant
    over the cut after one transition — an over-approximation of the
    image that still cannot fail within the unrolled suffix.  Iterating
    [R ← R ∨ I] until the (BDD-canonical) fixpoint proves the property
    for {e every} depth; satisfiable queries with an enlarged [R] restart
    with a deeper suffix. *)

type bmc_result =
  | Cex of int          (** property violated at this depth *)
  | Safe_up_to of int   (** no violation up to (and including) the bound *)
  | Check_failed of Checker.Diagnostics.failure
      (** an UNSAT answer whose proof did not validate *)

(** [bmc ?config ~max_depth ts] checks depths [0 .. max_depth] in order. *)
val bmc :
  ?config:Solver.Cdcl.config ->
  max_depth:int ->
  Circuit.Transition.t ->
  bmc_result

type mc_result =
  | Proved_safe of {
      iterations : int;        (** interpolation rounds to the fixpoint *)
      reachable_nodes : int;   (** BDD size of the inductive invariant *)
    }
  | Counterexample of { depth : int }
      (** the property is violated within this many steps (an upper
          bound; {!bmc} finds the minimal depth) *)
  | Inconclusive of { iterations : int }
      (** iteration budget exhausted before a fixpoint *)
  | Mc_check_failed of Checker.Diagnostics.failure

(** [interpolation_mc ?config ?initial_depth ?max_iterations ts] — the
    unbounded procedure.  [initial_depth] is the length of the unrolled
    suffix behind the interpolation cut (default 1, deepened on spurious
    hits); [max_iterations] bounds the total solver queries
    (default 64). *)
val interpolation_mc :
  ?config:Solver.Cdcl.config ->
  ?initial_depth:int ->
  ?max_iterations:int ->
  Circuit.Transition.t ->
  mc_result
