(* FPGA channel routing with unsat-core feedback (paper §4).

   An over-subscribed routing channel is unroutable; the SAT instance is
   unsatisfiable.  The depth-first checker's by-product — the set of
   original clauses used by the proof — localises *why*: after iterating
   to a fixed point, the surviving at-least-one clauses name exactly the
   nets whose mutual conflicts exceed the track supply, which is the
   designer-facing diagnosis the paper describes.

   Run with: dune exec examples/fpga_routing_core.exe *)

let nets = 48
let tracks = 6

let () =
  let f =
    Gen.Routing.channel (Sat.Rng.create 2003) ~nets ~tracks
      ~extra_conflict_density:0.05
  in
  Printf.printf
    "channel: %d nets, %d tracks -> %d variables, %d clauses\n" nets tracks
    (Sat.Cnf.nvars f) (Sat.Cnf.nclauses f);
  match Pipeline.Unsat_core.shrink ~max_rounds:20 f with
  | Error `Sat -> print_endline "routable after all?!"
  | Error (`Check_failed d) ->
    Printf.printf "checker rejected the proof: %s\n"
      (Checker.Diagnostics.to_string d)
  | Ok s ->
    print_endline "core shrinking:";
    Printf.printf "  input: %5d clauses over %d vars\n" s.initial.clauses
      s.initial.vars;
    List.iteri
      (fun i (it : Pipeline.Unsat_core.iteration) ->
        Printf.printf "  round %d: %5d clauses over %d vars\n" (i + 1)
          it.clauses it.vars)
      s.iterations;
    Printf.printf "  fixed point: %b\n" s.reached_fixpoint;
    (* map surviving at-least-one clauses back to net numbers: clause i
       (0-based) is net i+1's at-least-one constraint when i < nets *)
    let congested =
      List.filter_map
        (fun idx -> if idx < nets then Some (idx + 1) else None)
        s.final_indices
    in
    Printf.printf
      "unroutable hot spot: %d mutually conflicting nets for %d tracks: %s\n"
      (List.length congested) tracks
      (String.concat ", " (List.map string_of_int congested));
    if List.length congested > tracks then
      print_endline
        "=> any fix must reduce this clique (re-place a net or widen the \
         channel)"
