(* Debugging a buggy solver with the checker (paper §3.2: "the checker can
   also provide as much information as possible about the failure to help
   debug the solver").

   We simulate four classic solver/trace-generation bugs by corrupting a
   genuine trace, then show the diagnostic the checker produces for each
   — the information a solver author would start debugging from.

   Run with: dune exec examples/debugging_solver.exe *)

let corruptions :
    (string * string * (Trace.Event.t list -> Trace.Event.t list)) list =
  [
    ( "lost learned clause",
      "the solver deleted a learned clause from the database but a later \
       resolution still references it (a use-after-free in the clause \
       manager)",
      fun events ->
        let last_cl =
          List.fold_left
            (fun acc e ->
              match e with Trace.Event.Learned l -> Some l.id | _ -> acc)
            None events
        in
        List.filter
          (function
            | Trace.Event.Learned l -> Some l.id <> last_cl
            | _ -> true)
          events );
    ( "wrong resolve source",
      "conflict analysis recorded the wrong antecedent id (an off-by-one \
       in the implication graph walk)",
      List.map (function
        | Trace.Event.Learned l when Array.length l.sources >= 2 ->
          let sources = Array.copy l.sources in
          sources.(1) <- 1;
          Trace.Event.Learned { l with sources }
        | e -> e) );
    ( "flipped implied value",
      "the final level-0 dump recorded the complement of each variable's \
       value (a sign error in the trace writer)",
      List.map (function
        | Trace.Event.Level0 v ->
          Trace.Event.Level0 { v with value = not v.value }
        | e -> e) );
    ( "stale antecedent",
      "a variable's antecedent points at a clause that could not have \
       been unit when the variable was implied",
      fun events ->
        (* give the first VAR record the antecedent of the last one *)
        let antes =
          List.filter_map
            (function Trace.Event.Level0 v -> Some v.ante | _ -> None)
            events
        in
        let last_ante = List.nth antes (List.length antes - 1) in
        let first = ref true in
        List.map
          (function
            | Trace.Event.Level0 v when !first ->
              first := false;
              Trace.Event.Level0 { v with ante = last_ante }
            | e -> e)
          events );
  ]

let () =
  let f = Gen.Php.unsat ~holes:4 in
  let result, _, trace = Pipeline.Validate.solve_with_trace f in
  (match result with
   | Solver.Cdcl.Unsat -> ()
   | Solver.Cdcl.Sat _ -> failwith "php is unsat");
  let events = Trace.Reader.to_list (Trace.Reader.From_string trace) in
  Printf.printf "healthy solver first: ";
  (match Checker.Df.check f (Trace.Reader.From_string trace) with
   | Ok r ->
     Printf.printf "proof verified (%d resolution steps)\n\n"
       r.resolution_steps
   | Error d -> Printf.printf "unexpected: %s\n" (Checker.Diagnostics.to_string d));
  List.iter
    (fun (name, story, corrupt) ->
      Printf.printf "injected bug: %s\n  (%s)\n" name story;
      let mutated = corrupt events in
      let w = Trace.Writer.create Trace.Writer.Ascii in
      List.iter (Trace.Writer.emit w) mutated;
      let source = Trace.Reader.From_string (Trace.Writer.contents w) in
      (match Checker.Df.check f source with
       | Ok _ ->
         print_endline "  checker verdict: ACCEPTED (bug not observable in this proof)"
       | Error d ->
         Printf.printf "  checker verdict: REJECTED — %s\n"
           (Checker.Diagnostics.to_string d));
      print_newline ())
    corruptions
