(* Combinational equivalence checking — the EDA workload that motivates
   the paper's introduction.  Two structurally different multiplier
   implementations are mitered; when the SAT engine reports UNSAT
   ("equivalent"), the independent checker replays the resolution proof,
   because a silent solver bug here would sign off a broken chip.

   Run with: dune exec examples/equivalence_checking.exe *)

module N = Circuit.Netlist
module A = Circuit.Arith

let check_equivalence title build_b width =
  let c = N.create () in
  let a = A.word_input c "a" width in
  let b = A.word_input c "b" width in
  let reference = A.mul_shift_add c a b in
  let candidate = build_b c a b in
  let miter = Circuit.Miter.equivalence_cnf c reference candidate in
  Printf.printf "--- %s (%d-bit): %d variables, %d clauses\n" title width
    (Sat.Cnf.nvars miter) (Sat.Cnf.nclauses miter);
  let outcome = Pipeline.Validate.run miter in
  match outcome.verdict with
  | Pipeline.Validate.Unsat_verified report ->
    Printf.printf
      "EQUIVALENT — and the proof checks (%d resolution steps, %.3f s \
       solve, %.3f s check)\n"
      report.resolution_steps outcome.solve_seconds outcome.check_seconds
  | Pipeline.Validate.Sat_verified model ->
    (* the model is a concrete input on which the circuits differ *)
    let enc = Circuit.Tseitin.encode c ~constraints:[] in
    let value_of prefix =
      List.fold_right
        (fun i acc ->
          let v = enc.Circuit.Tseitin.var_of_input (Printf.sprintf "%s_%d" prefix i) in
          (2 * acc)
          + (if Sat.Assignment.value model v = Sat.Assignment.True then 1 else 0))
        (List.init width (fun i -> i))
        0
    in
    Printf.printf
      "NOT EQUIVALENT — counterexample a=%d, b=%d (verified against the \
       formula)\n"
      (value_of "a") (value_of "b")
  | Pipeline.Validate.Sat_model_wrong _
  | Pipeline.Validate.Unsat_check_failed _ ->
    print_endline "SOLVER BUG detected by the independent checker!"

let () =
  (* a correct alternative implementation: MSB-first accumulation *)
  check_equivalence "shift-add vs MSB-first multiplier"
    (fun c a b -> A.mul_msb_first c a b)
    5;
  (* a broken implementation: the top partial product is dropped *)
  check_equivalence "shift-add vs broken multiplier"
    (fun c a b ->
      let b_broken =
        List.mapi
          (fun i bi -> if i = List.length b - 1 then N.const c false else bi)
          b
      in
      A.mul_msb_first c a b_broken)
    5
