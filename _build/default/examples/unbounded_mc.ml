(* Unbounded safety checking with interpolants — BMC (the paper's
   benchmark family) can only ever certify "safe up to depth k"; the
   interpolants extracted from each *checked* UNSAT proof close the
   induction and prove safety for every depth.

   The saturating counter makes the contrast crisp: it runs forever, so
   no finite BMC bound finishes the job, yet three data points fall out
   of the proofs: the counterexample depth when the target is reachable,
   the BMC bound sweep when it is not, and the interpolation fixpoint
   that settles the question outright.

   Run with: dune exec examples/unbounded_mc.exe *)

module B = Pipeline.Bmc_engine
module T = Circuit.Transition

let describe name ts ~max_depth =
  Printf.printf "--- %s\n" name;
  (match B.bmc ~max_depth ts with
   | B.Cex d -> Printf.printf "BMC: property violated at depth %d\n" d
   | B.Safe_up_to d ->
     Printf.printf "BMC: safe up to depth %d - but says nothing beyond\n" d
   | B.Check_failed x ->
     Printf.printf "BMC: proof rejected! %s\n" (Checker.Diagnostics.to_string x));
  (match B.interpolation_mc ts with
   | B.Proved_safe { iterations; reachable_nodes } ->
     Printf.printf
       "Interpolation MC: PROVED SAFE for every depth (%d refinement \
        rounds; inductive invariant = %d BDD nodes)\n"
       iterations reachable_nodes
   | B.Counterexample { depth } ->
     Printf.printf "Interpolation MC: violated within %d steps\n" depth
   | B.Inconclusive { iterations } ->
     Printf.printf "Interpolation MC: gave up after %d rounds\n" iterations
   | B.Mc_check_failed d ->
     Printf.printf "Interpolation MC: proof rejected! %s\n"
       (Checker.Diagnostics.to_string d));
  print_newline ()

let () =
  describe "token ring, 6 stations (safe)" (T.token_ring ~nodes:6)
    ~max_depth:8;
  describe "token ring with a duplication glitch (unsafe)"
    (T.token_ring_buggy ~nodes:6) ~max_depth:8;
  describe "saturating counter, limit 5, target 9 (safe, runs forever)"
    (T.saturating_counter ~width:4 ~limit:5 ~target:9)
    ~max_depth:10;
  describe "saturating counter, limit 9, target 5 (unsafe)"
    (T.saturating_counter ~width:4 ~limit:9 ~target:5)
    ~max_depth:10;
  describe "two-process mutex (safe)" (T.mutex ()) ~max_depth:8
