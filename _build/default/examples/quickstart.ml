(* Quickstart: the full validated-solving loop in a few lines.

   Build a formula through the API, solve it with trace generation, then
   validate the answer independently — a verified model for SAT, a
   replayed resolution proof for UNSAT.

   Run with: dune exec examples/quickstart.exe *)

let solve_and_validate name f =
  Printf.printf "--- %s: %d variables, %d clauses\n" name (Sat.Cnf.nvars f)
    (Sat.Cnf.nclauses f);
  let outcome = Pipeline.Validate.run f in
  match outcome.verdict with
  | Pipeline.Validate.Sat_verified a ->
    let lits =
      Sat.Assignment.to_list a
      |> List.map (fun (v, b) -> string_of_int (if b then v else -v))
    in
    Printf.printf "SATISFIABLE, verified model: %s\n"
      (String.concat " " lits)
  | Pipeline.Validate.Unsat_verified report ->
    Printf.printf
      "UNSATISFIABLE, proof verified: %d resolution steps, %d/%d learned \
       clauses rebuilt, core of %d original clauses\n"
      report.resolution_steps report.clauses_built report.total_learned
      (List.length report.core_original_ids)
  | Pipeline.Validate.Sat_model_wrong i ->
    Printf.printf "SOLVER BUG: clause %d not satisfied!\n" i
  | Pipeline.Validate.Unsat_check_failed d ->
    Printf.printf "SOLVER BUG: %s\n" (Checker.Diagnostics.to_string d)

let () =
  (* a satisfiable toy: (x1 + x2)(¬x1 + x3)(¬x3 + ¬x2) *)
  let sat_formula =
    Sat.Cnf.of_clauses 3
      [
        Sat.Clause.of_ints [ 1; 2 ];
        Sat.Clause.of_ints [ -1; 3 ];
        Sat.Clause.of_ints [ -3; -2 ];
      ]
  in
  solve_and_validate "toy formula" sat_formula;

  (* an unsatisfiable classic: 5 pigeons, 4 holes *)
  solve_and_validate "pigeonhole PHP(5,4)" (Gen.Php.unsat ~holes:4);

  (* the same loop from a DIMACS document *)
  let from_dimacs =
    Sat.Dimacs.parse_string "p cnf 2 4\n1 2 0\n-1 2 0\n1 -2 0\n-1 -2 0\n"
  in
  solve_and_validate "DIMACS input" from_dimacs
