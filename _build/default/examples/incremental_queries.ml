(* Incremental solving with assumptions — the query pattern interactive
   EDA tools use on top of one long-lived solver: the clause database and
   everything learned from earlier questions persist, and each "what if?"
   is a set of assumption literals rather than a rebuilt instance.

   The scenario is channel routing: nets must take one of a few tracks,
   overlapping nets may not share one.  We ask, net by net, "could this
   net still use track 1?", then force a routing decision and watch
   dependent answers flip; failed assumptions name the conflicting
   constraint set.

   Run with: dune exec examples/incremental_queries.exe *)

module C = Solver.Cdcl

let nets = 8
let tracks = 3
let var n t = ((n - 1) * tracks) + t

(* overlapping net pairs (a small interval graph) *)
let conflicts =
  [ (1, 2); (2, 3); (1, 3); (3, 4); (4, 5); (5, 6); (4, 6); (6, 7); (7, 8) ]

let () =
  let f = Sat.Cnf.create (nets * tracks) in
  for n = 1 to nets do
    ignore
      (Sat.Cnf.add_clause f
         (Array.init tracks (fun t -> Sat.Lit.pos (var n (t + 1)))))
  done;
  List.iter
    (fun (a, b) ->
      for t = 1 to tracks do
        ignore
          (Sat.Cnf.add_clause f
             [| Sat.Lit.neg (var a t); Sat.Lit.neg (var b t) |])
      done)
    conflicts;
  let session = C.Incremental.create f in
  let ask label assumptions =
    match C.Incremental.solve ~assumptions session with
    | C.A_sat _ -> Printf.printf "%-34s yes\n" label
    | C.A_unsat_assumptions failed ->
      Printf.printf "%-34s no (because of: %s)\n" label
        (String.concat ", " (List.map Sat.Lit.to_string failed))
    | C.A_unsat -> Printf.printf "%-34s channel unroutable!\n" label
  in
  print_endline "before any commitment:";
  ask "  net 1 on track 1?" [ Sat.Lit.pos (var 1 1) ];
  ask "  nets 1 and 2 both on track 1?"
    [ Sat.Lit.pos (var 1 1); Sat.Lit.pos (var 2 1) ];
  print_endline "commit: net 1 takes track 1, net 3 takes track 2";
  C.Incremental.add_clause session [| Sat.Lit.pos (var 1 1) |];
  C.Incremental.add_clause session [| Sat.Lit.pos (var 3 2) |];
  ask "  net 2 on track 1?" [ Sat.Lit.pos (var 2 1) ];
  ask "  net 2 on track 2?" [ Sat.Lit.pos (var 2 2) ];
  ask "  net 2 on track 3?" [ Sat.Lit.pos (var 2 3) ];
  ask "  full routing still possible?" [];
  Printf.printf "one solver, %d conflicts total across all queries\n"
    (C.Incremental.stats session).conflicts
