(* Interpolation over a BMC unrolling — the application that made
   proof-producing SAT engines a model-checking workhorse (McMillan 2003,
   contemporaneous with the paper).

   We unroll the token-ring circuit k steps with the one-hot safety
   property asserted broken at step k.  The instance is UNSAT (the
   property holds), and splitting the clauses into

     A = initial state + the first half of the unrolling
     B = the second half + the property violation

   yields, from the *checked* resolution proof, an interpolant I over the
   mid-point state variables: an over-approximation of the states
   reachable in k/2 steps that still cannot violate the property in the
   remaining steps.  Here the ring is small enough to print I's truth
   table over the mid-point state and see it is exactly the one-hot
   predicate.

   Run with: dune exec examples/interpolation_bmc.exe *)

let nodes = 4
let steps = 4

let () =
  let f = Gen.Bmc.token_ring ~nodes ~steps in
  Printf.printf "token ring: %d nodes, %d steps -> %d vars, %d clauses\n"
    nodes steps (Sat.Cnf.nvars f) (Sat.Cnf.nclauses f);
  (* clause order follows circuit unrolling order, so an index prefix is a
     time prefix; split at half the clauses *)
  let cut = Sat.Cnf.nclauses f / 2 in
  let a_indices = List.init cut (fun i -> i) in
  let result, _, trace = Pipeline.Validate.solve_with_trace f in
  match result with
  | Solver.Cdcl.Sat _ -> print_endline "property violated?!"
  | Solver.Cdcl.Unsat -> (
    match
      Pipeline.Interpolant.compute f ~a_indices
        (Trace.Reader.From_string trace)
    with
    | Error d ->
      Printf.printf "proof did not check: %s\n"
        (Checker.Diagnostics.to_string d)
    | Ok itp ->
      Printf.printf
        "UNSAT proof checked; interpolant: %d circuit nodes over %d shared \
         variables\n"
        (Pipeline.Interpolant.size itp)
        (List.length itp.shared_vars);
      let shared = itp.shared_vars in
      Printf.printf "shared variables: %s\n"
        (String.concat ", " (List.map string_of_int shared));
      (* enumerate the interpolant over its shared variables *)
      let k = List.length shared in
      if k <= 12 then begin
        print_endline "satisfying shared-variable patterns of I (up to 16):";
        let count = ref 0 in
        for mask = 0 to (1 lsl k) - 1 do
          let valuation =
            List.mapi (fun i v -> (v, (mask lsr i) land 1 = 1)) shared
          in
          if Pipeline.Interpolant.eval itp valuation then begin
            incr count;
            if !count <= 16 then begin
              let bits =
                String.concat ""
                  (List.map (fun (_, b) -> if b then "1" else "0") valuation)
              in
              Printf.printf "  %s\n" bits
            end
          end
        done;
        Printf.printf
          "%d of %d patterns satisfy I: the proof distilled an \
           over-approximation of the reachable midpoint states\n"
          !count (1 lsl k)
      end)
