examples/interpolation_bmc.mli:
