examples/equivalence_checking.ml: Circuit List Pipeline Printf Sat
