examples/interpolation_bmc.ml: Checker Gen List Pipeline Printf Sat Solver String Trace
