examples/incremental_queries.ml: Array List Printf Sat Solver String
