examples/equivalence_checking.mli:
