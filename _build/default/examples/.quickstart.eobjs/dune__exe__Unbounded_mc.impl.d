examples/unbounded_mc.ml: Checker Circuit Pipeline Printf
