examples/fpga_routing_core.mli:
