examples/debugging_solver.ml: Array Checker Gen List Pipeline Printf Solver Trace
