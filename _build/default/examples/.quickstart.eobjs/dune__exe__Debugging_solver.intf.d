examples/debugging_solver.mli:
