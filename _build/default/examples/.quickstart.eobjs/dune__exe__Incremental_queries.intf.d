examples/incremental_queries.mli:
