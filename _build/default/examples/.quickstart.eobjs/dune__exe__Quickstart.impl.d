examples/quickstart.ml: Checker Gen List Pipeline Printf Sat String
