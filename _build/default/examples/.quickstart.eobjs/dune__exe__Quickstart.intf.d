examples/quickstart.mli:
