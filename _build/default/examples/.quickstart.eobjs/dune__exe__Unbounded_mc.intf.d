examples/unbounded_mc.mli:
