examples/fpga_routing_core.ml: Checker Gen List Pipeline Printf Sat String
