(* Tests for the level-0 record set and the antecedent check. *)

let make records =
  let l0 = Checker.Level0.create () in
  List.iter
    (fun (var, value, ante) -> Checker.Level0.add l0 ~var ~value ~ante)
    records;
  l0

let test_accessors () =
  let l0 = make [ (3, true, 10); (5, false, 11) ] in
  Alcotest.check Alcotest.int "count" 2 (Checker.Level0.count l0);
  Alcotest.check Alcotest.bool "mem" true (Checker.Level0.mem l0 3);
  Alcotest.check Alcotest.bool "value" true (Checker.Level0.value l0 3);
  Alcotest.check Alcotest.int "ante" 11 (Checker.Level0.ante l0 5);
  Alcotest.check Alcotest.bool "order chronological" true
    (Checker.Level0.order l0 3 < Checker.Level0.order l0 5)

let test_duplicate () =
  try
    ignore (make [ (3, true, 10); (3, false, 11) ]);
    Alcotest.fail "duplicate accepted"
  with Checker.Diagnostics.Check_failed (Checker.Diagnostics.Level0_duplicate_var 3) ->
    ()

let test_unrecorded () =
  let l0 = make [ (3, true, 10) ] in
  try
    ignore (Checker.Level0.value l0 9);
    Alcotest.fail "unrecorded accepted"
  with
  | Checker.Diagnostics.Check_failed
      (Checker.Diagnostics.Level0_var_unrecorded 9) -> ()

let test_lit_false () =
  let l0 = make [ (3, true, 10); (5, false, 11) ] in
  Alcotest.check Alcotest.bool "-3 false under x3=true" true
    (Checker.Level0.lit_false l0 (Sat.Lit.neg 3));
  Alcotest.check Alcotest.bool "3 not false" false
    (Checker.Level0.lit_false l0 (Sat.Lit.pos 3));
  Alcotest.check Alcotest.bool "5 false under x5=false" true
    (Checker.Level0.lit_false l0 (Sat.Lit.pos 5));
  Alcotest.check Alcotest.bool "unrecorded not false" false
    (Checker.Level0.lit_false l0 (Sat.Lit.pos 8))

let check_ante l0 v c = Checker.Level0.check_antecedent l0 ~var:v c

let test_antecedent_ok () =
  (* x3 := true implied by (x3 + ¬x2) after x2 := true *)
  let l0 = make [ (2, true, 1); (3, true, 2) ] in
  Alcotest.check (Alcotest.option Alcotest.string) "valid antecedent" None
    (check_ante l0 3 (Sat.Clause.of_ints [ 3; -2 ]))

let some_failure = Alcotest.testable (fun fmt _ -> Format.fprintf fmt "<reason>") (fun a b -> (a = None) = (b = None))

let test_antecedent_missing_implied () =
  let l0 = make [ (2, true, 1); (3, true, 2) ] in
  Alcotest.check some_failure "clause lacks the implied literal"
    (Some "x")
    (check_ante l0 3 (Sat.Clause.of_ints [ -3; -2 ]))

let test_antecedent_not_falsified () =
  (* other literal ¬x2 would be true, so the clause was satisfied, not
     unit *)
  let l0 = make [ (2, false, 1); (3, true, 2) ] in
  Alcotest.check some_failure "other literal not falsified" (Some "x")
    (check_ante l0 3 (Sat.Clause.of_ints [ 3; -2 ]))

let test_antecedent_wrong_order () =
  (* x2 assigned after x3: the clause could not have been unit yet *)
  let l0 = make [ (3, true, 2); (2, true, 1) ] in
  Alcotest.check some_failure "assigned after" (Some "x")
    (check_ante l0 3 (Sat.Clause.of_ints [ 3; -2 ]))

let test_antecedent_unrecorded_var () =
  let l0 = make [ (3, true, 2) ] in
  Alcotest.check some_failure "unrecorded companion" (Some "x")
    (check_ante l0 3 (Sat.Clause.of_ints [ 3; -7 ]))

let suite =
  [
    ( "level0",
      [
        Alcotest.test_case "accessors" `Quick test_accessors;
        Alcotest.test_case "duplicate var" `Quick test_duplicate;
        Alcotest.test_case "unrecorded var" `Quick test_unrecorded;
        Alcotest.test_case "lit_false" `Quick test_lit_false;
        Alcotest.test_case "antecedent ok" `Quick test_antecedent_ok;
        Alcotest.test_case "antecedent missing implied" `Quick
          test_antecedent_missing_implied;
        Alcotest.test_case "antecedent not falsified" `Quick
          test_antecedent_not_falsified;
        Alcotest.test_case "antecedent wrong order" `Quick
          test_antecedent_wrong_order;
        Alcotest.test_case "antecedent unrecorded var" `Quick
          test_antecedent_unrecorded_var;
      ] );
  ]
