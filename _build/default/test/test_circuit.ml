(* Tests for the circuit substrate: netlist construction and folding, the
   simulator, and faithfulness of the Tseitin encoding. *)

module N = Circuit.Netlist

let test_constant_folding () =
  let c = N.create () in
  let x = N.input c "x" in
  let t = N.const c true and f = N.const c false in
  Alcotest.check Alcotest.bool "and with false folds" true
    (N.and_ c x f = f);
  Alcotest.check Alcotest.bool "and with true is identity" true
    (N.and_ c x t = x);
  Alcotest.check Alcotest.bool "or with true folds" true (N.or_ c x t = t);
  Alcotest.check Alcotest.bool "xor with false is identity" true
    (N.xor_ c x f = x);
  Alcotest.check Alcotest.bool "x and x is x" true (N.and_ c x x = x);
  Alcotest.check Alcotest.bool "x xor x is false" true (N.xor_ c x x = f);
  Alcotest.check Alcotest.bool "double negation cancels" true
    (N.not_ c (N.not_ c x) = x)

let test_hash_consing () =
  let c = N.create () in
  let x = N.input c "x" and y = N.input c "y" in
  let a1 = N.and_ c x y in
  let a2 = N.and_ c y x in
  Alcotest.check Alcotest.bool "commutative sharing" true (a1 = a2);
  let before = N.num_nodes c in
  ignore (N.and_ c x y);
  Alcotest.check Alcotest.int "no new node" before (N.num_nodes c)

let test_duplicate_input_rejected () =
  let c = N.create () in
  ignore (N.input c "x");
  try
    ignore (N.input c "x");
    Alcotest.fail "duplicate input accepted"
  with Invalid_argument _ -> ()

let test_sim_gates () =
  let c = N.create () in
  let x = N.input c "x" and y = N.input c "y" in
  let nodes =
    [ N.and_ c x y; N.or_ c x y; N.xor_ c x y; N.not_ c x;
      N.nand_ c x y; N.nor_ c x y; N.xnor_ c x y ]
  in
  let eval bx by =
    Circuit.Sim.eval c ~inputs:[ ("x", bx); ("y", by) ] nodes
  in
  Alcotest.check (Alcotest.list Alcotest.bool) "11"
    [ true; true; false; false; false; false; true ] (eval true true);
  Alcotest.check (Alcotest.list Alcotest.bool) "10"
    [ false; true; true; false; true; false; false ] (eval true false);
  Alcotest.check (Alcotest.list Alcotest.bool) "00"
    [ false; false; false; true; true; true; true ] (eval false false)

let test_sim_missing_input () =
  let c = N.create () in
  let x = N.input c "x" in
  try
    ignore (Circuit.Sim.eval1 c ~inputs:[] x);
    Alcotest.fail "missing input accepted"
  with Invalid_argument _ -> ()

let test_mux () =
  let c = N.create () in
  let s = N.input c "s" and a = N.input c "a" and b = N.input c "b" in
  let m = N.mux c ~sel:s ~if_true:a ~if_false:b in
  let eval vs va vb =
    Circuit.Sim.eval1 c ~inputs:[ ("s", vs); ("a", va); ("b", vb) ] m
  in
  Alcotest.check Alcotest.bool "sel=1 picks a" true (eval true true false);
  Alcotest.check Alcotest.bool "sel=0 picks b" false (eval false true false)

let test_big_ops () =
  let c = N.create () in
  let xs = List.init 5 (fun i -> N.input c (Printf.sprintf "x%d" i)) in
  let all = N.big_and c xs and any = N.big_or c xs and parity = N.big_xor c xs in
  let inputs bs = List.mapi (fun i b -> (Printf.sprintf "x%d" i, b)) bs in
  let v = Circuit.Sim.eval c ~inputs:(inputs [ true; true; false; true; true ]) in
  Alcotest.check (Alcotest.list Alcotest.bool) "mixed"
    [ false; true; false ] (v [ all; any; parity ]);
  let v2 = Circuit.Sim.eval c ~inputs:(inputs [ true; true; true; true; true ]) in
  Alcotest.check (Alcotest.list Alcotest.bool) "all ones"
    [ true; true; true ] (v2 [ all; any; parity ]);
  Alcotest.check Alcotest.bool "empty big_and is true" true
    (N.big_and c [] = N.const c true)

(* Tseitin faithfulness: for random circuits and random input pinnings,
   the CNF is satisfiable exactly when the simulator agrees, and the SAT
   model evaluates the circuit consistently. *)
let prop_tseitin_faithful =
  Helpers.qtest ~count:60 "tseitin encodes the circuit"
    QCheck.(small_int)
    (fun seed ->
      let rng = Sat.Rng.create seed in
      let c = N.create () in
      let n_inputs = 2 + Sat.Rng.int rng 4 in
      let inputs =
        List.init n_inputs (fun i -> N.input c (Printf.sprintf "x%d" i))
      in
      (* grow a random DAG *)
      let pool = ref (Array.of_list inputs) in
      for _ = 1 to 10 + Sat.Rng.int rng 15 do
        let pick () = Sat.Rng.pick rng !pool in
        let n =
          match Sat.Rng.int rng 4 with
          | 0 -> N.and_ c (pick ()) (pick ())
          | 1 -> N.or_ c (pick ()) (pick ())
          | 2 -> N.xor_ c (pick ()) (pick ())
          | _ -> N.not_ c (pick ())
        in
        pool := Array.append !pool [| n |]
      done;
      let out = !pool.(Array.length !pool - 1) in
      let want = Sat.Rng.bool rng in
      let enc = Circuit.Tseitin.encode c ~constraints:[ (out, want) ] in
      (* oracle: does some input valuation give [want]? *)
      let expected = ref false in
      for mask = 0 to (1 lsl n_inputs) - 1 do
        let inputs_v =
          List.mapi
            (fun i _ -> (Printf.sprintf "x%d" i, (mask lsr i) land 1 = 1))
            inputs
        in
        if Circuit.Sim.eval1 c ~inputs:inputs_v out = want then
          expected := true
      done;
      match Solver.Cdcl.solve enc.Circuit.Tseitin.cnf with
      | Solver.Cdcl.Sat a, _ ->
        (* read back the model and re-simulate *)
        let inputs_v = Circuit.Tseitin.model_to_inputs enc c a in
        !expected && Circuit.Sim.eval1 c ~inputs:inputs_v out = want
      | Solver.Cdcl.Unsat, _ -> not !expected)

let test_miter_equivalent () =
  (* two forms of xor: a⊕b vs (a∧¬b)∨(¬a∧b) *)
  let c = N.create () in
  let a = N.input c "a" and b = N.input c "b" in
  let x1 = N.xor_ c a b in
  let x2 = N.or_ c (N.and_ c a (N.not_ c b)) (N.and_ c (N.not_ c a) b) in
  let f = Circuit.Miter.equivalence_cnf c [ x1 ] [ x2 ] in
  match Solver.Cdcl.solve f with
  | Solver.Cdcl.Unsat, _ -> ()
  | Solver.Cdcl.Sat _, _ -> Alcotest.fail "equivalent circuits distinguished"

let test_miter_inequivalent () =
  let c = N.create () in
  let a = N.input c "a" and b = N.input c "b" in
  let f = Circuit.Miter.equivalence_cnf c [ N.and_ c a b ] [ N.or_ c a b ] in
  match Solver.Cdcl.solve f with
  | Solver.Cdcl.Sat m, _ ->
    Alcotest.check Alcotest.bool "counterexample verified" true
      (Sat.Model.satisfies m f)
  | Solver.Cdcl.Unsat, _ -> Alcotest.fail "and = or ?!"

let test_miter_width_mismatch () =
  let c = N.create () in
  let a = N.input c "a" in
  try
    ignore (Circuit.Miter.build c [ a ] []);
    Alcotest.fail "width mismatch accepted"
  with Invalid_argument _ -> ()

let suite =
  [
    ( "netlist",
      [
        Alcotest.test_case "constant folding" `Quick test_constant_folding;
        Alcotest.test_case "hash consing" `Quick test_hash_consing;
        Alcotest.test_case "duplicate input" `Quick
          test_duplicate_input_rejected;
        Alcotest.test_case "big and/or/xor" `Quick test_big_ops;
        Alcotest.test_case "mux" `Quick test_mux;
      ] );
    ( "sim",
      [
        Alcotest.test_case "gate semantics" `Quick test_sim_gates;
        Alcotest.test_case "missing input" `Quick test_sim_missing_input;
      ] );
    ( "tseitin",
      [
        prop_tseitin_faithful;
        Alcotest.test_case "miter equivalent" `Quick test_miter_equivalent;
        Alcotest.test_case "miter inequivalent" `Quick test_miter_inequivalent;
        Alcotest.test_case "miter width mismatch" `Quick
          test_miter_width_mismatch;
      ] );
  ]
