(* Tests for the historical baselines: plain DLL search and the classic
   Davis-Putnam elimination procedure. *)

let test_dll_agrees_with_oracle () =
  let rng = Sat.Rng.create 555 in
  for _ = 1 to 80 do
    let nvars = 3 + Sat.Rng.int rng 9 in
    let f =
      Helpers.random_messy_cnf rng ~nvars ~nclauses:(1 + Sat.Rng.int rng 35)
    in
    let oracle = Solver.Enumerate.solve f in
    match Solver.Dll.solve f with
    | Some (result, _) ->
      if not (Helpers.same_status oracle result) then
        Alcotest.failf "DLL disagrees: oracle %s, dll %s"
          (Helpers.status_to_string oracle)
          (Helpers.status_to_string result)
    | None -> Alcotest.fail "DLL hit the node limit on a tiny instance"
  done

let test_dll_models_verified () =
  let rng = Sat.Rng.create 556 in
  for _ = 1 to 40 do
    let f = Helpers.random_3sat rng ~nvars:10 ~nclauses:25 in
    match Solver.Dll.solve f with
    | Some (Solver.Cdcl.Sat a, _) ->
      Alcotest.check Alcotest.bool "dll model satisfies" true
        (Sat.Model.satisfies a f)
    | Some (Solver.Cdcl.Unsat, _) -> ()
    | None -> Alcotest.fail "node limit"
  done

let test_dll_node_limit () =
  let f = Gen.Php.unsat ~holes:7 in
  match Solver.Dll.solve ~node_limit:10 f with
  | None -> ()
  | Some _ -> Alcotest.fail "node limit not respected"

let test_dll_stats () =
  let f = Gen.Php.unsat ~holes:3 in
  match Solver.Dll.solve f with
  | Some (Solver.Cdcl.Unsat, stats) ->
    Alcotest.check Alcotest.bool "made decisions" true (stats.decisions > 0)
  | Some (Solver.Cdcl.Sat _, _) -> Alcotest.fail "php unsat"
  | None -> Alcotest.fail "node limit"

let test_dp_agrees_with_oracle () =
  let rng = Sat.Rng.create 557 in
  for _ = 1 to 60 do
    let nvars = 3 + Sat.Rng.int rng 8 in
    let f =
      Helpers.random_messy_cnf rng ~nvars ~nclauses:(1 + Sat.Rng.int rng 30)
    in
    let oracle = Solver.Enumerate.solve f in
    let outcome, _ = Solver.Dp.solve f in
    match outcome, oracle with
    | Solver.Dp.Sat_dp, Solver.Cdcl.Sat _ -> ()
    | Solver.Dp.Unsat_dp, Solver.Cdcl.Unsat -> ()
    | Solver.Dp.Out_of_budget, _ -> Alcotest.fail "budget on tiny instance"
    | Solver.Dp.Sat_dp, Solver.Cdcl.Unsat
    | Solver.Dp.Unsat_dp, Solver.Cdcl.Sat _ ->
      Alcotest.fail "DP disagrees with oracle"
  done

let test_dp_space_blowup () =
  (* the paper's motivation for DLL over DP: elimination blows up in
     space; a pigeonhole instance must overflow a small clause budget *)
  let f = Gen.Php.unsat ~holes:7 in
  let outcome, stats = Solver.Dp.solve ~clause_budget:600 f in
  match outcome with
  | Solver.Dp.Out_of_budget ->
    Alcotest.check Alcotest.bool "peak tracked" true
      (stats.peak_clauses > 600)
  | Solver.Dp.Sat_dp -> Alcotest.fail "php is unsat"
  | Solver.Dp.Unsat_dp ->
    (* acceptable if elimination order got lucky; but the peak must at
       least have been recorded *)
    Alcotest.check Alcotest.bool "peak recorded" true (stats.peak_clauses > 0)

let test_dp_trivial () =
  let empty_clause = Sat.Cnf.of_clauses 1 [ [||] ] in
  (match Solver.Dp.solve empty_clause with
   | Solver.Dp.Unsat_dp, _ -> ()
   | (Solver.Dp.Sat_dp | Solver.Dp.Out_of_budget), _ ->
     Alcotest.fail "empty clause is unsat");
  let empty_formula = Sat.Cnf.create 2 in
  match Solver.Dp.solve empty_formula with
  | Solver.Dp.Sat_dp, _ -> ()
  | (Solver.Dp.Unsat_dp | Solver.Dp.Out_of_budget), _ ->
    Alcotest.fail "empty formula is sat"

let test_enumerate_count_models () =
  (* x1 or x2 over exactly those two vars: 3 models *)
  let f = Sat.Cnf.of_clauses 2 [ Sat.Clause.of_ints [ 1; 2 ] ] in
  Alcotest.check Alcotest.int "count" 3 (Solver.Enumerate.count_models f)

let test_enumerate_limit () =
  let f = Sat.Cnf.create 30 in
  let c = Sat.Clause.of_lits (List.init 30 (fun i -> Sat.Lit.pos (i + 1))) in
  ignore (Sat.Cnf.add_clause f c);
  try
    ignore (Solver.Enumerate.solve f);
    Alcotest.fail "oracle accepted 30 variables"
  with Invalid_argument _ -> ()

let suite =
  [
    ( "dll",
      [
        Alcotest.test_case "agrees with oracle" `Slow
          test_dll_agrees_with_oracle;
        Alcotest.test_case "models verified" `Quick test_dll_models_verified;
        Alcotest.test_case "node limit" `Quick test_dll_node_limit;
        Alcotest.test_case "stats" `Quick test_dll_stats;
      ] );
    ( "dp",
      [
        Alcotest.test_case "agrees with oracle" `Slow
          test_dp_agrees_with_oracle;
        Alcotest.test_case "space blowup" `Quick test_dp_space_blowup;
        Alcotest.test_case "trivial formulas" `Quick test_dp_trivial;
      ] );
    ( "enumerate",
      [
        Alcotest.test_case "count models" `Quick test_enumerate_count_models;
        Alcotest.test_case "variable limit" `Quick test_enumerate_limit;
      ] );
  ]
