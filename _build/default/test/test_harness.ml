(* Tests for the experiment harness: meter accounting and table
   rendering. *)

let test_meter_accounting () =
  let m = Harness.Meter.create () in
  Harness.Meter.alloc m 100;
  Harness.Meter.alloc m 50;
  Alcotest.check Alcotest.int "live" 150 (Harness.Meter.live_words m);
  Alcotest.check Alcotest.int "peak" 150 (Harness.Meter.peak_words m);
  Harness.Meter.free m 120;
  Alcotest.check Alcotest.int "live after free" 30
    (Harness.Meter.live_words m);
  Alcotest.check Alcotest.int "peak sticky" 150 (Harness.Meter.peak_words m);
  Harness.Meter.alloc m 10;
  Alcotest.check Alcotest.int "peak unchanged below high-water" 150
    (Harness.Meter.peak_words m);
  Alcotest.check Alcotest.int "peak bytes" (150 * 8)
    (Harness.Meter.peak_bytes m)

let test_meter_limit () =
  let m = Harness.Meter.create ~limit_words:100 () in
  Harness.Meter.alloc m 90;
  try
    Harness.Meter.alloc m 20;
    Alcotest.fail "limit not enforced"
  with Harness.Meter.Out_of_memory_simulated e ->
    Alcotest.check Alcotest.int "limit reported" 100 e.limit_words;
    Alcotest.check Alcotest.int "wanted reported" 110 e.wanted

let test_meter_free_floor () =
  let m = Harness.Meter.create () in
  Harness.Meter.alloc m 5;
  Harness.Meter.free m 50;
  Alcotest.check Alcotest.int "never negative" 0 (Harness.Meter.live_words m)

let test_timer () =
  let x, seconds = Harness.Timer.time (fun () -> 42) in
  Alcotest.check Alcotest.int "result passed through" 42 x;
  Alcotest.check Alcotest.bool "non-negative" true (seconds >= 0.0)

let test_table_render () =
  let s =
    Harness.Table.render
      ~headers:[ "name"; "n" ]
      ~align:[ Harness.Table.Left; Harness.Table.Right ]
      [ [ "alpha"; "1" ]; [ "b"; "22" ] ]
  in
  let lines = String.split_on_char '\n' s |> List.filter (( <> ) "") in
  Alcotest.check Alcotest.int "4 lines" 4 (List.length lines);
  (match lines with
   | [ header; rule; r1; r2 ] ->
     Alcotest.check Alcotest.bool "rule is dashes" true
       (String.for_all (( = ) '-') rule);
     Alcotest.check Alcotest.int "aligned widths" (String.length header)
       (String.length r1);
     Alcotest.check Alcotest.int "aligned widths 2" (String.length header)
       (String.length r2);
     Alcotest.check Alcotest.bool "left-aligned name" true
       (String.length r1 > 0 && r1.[0] = 'a')
   | _ -> Alcotest.fail "unexpected shape")

let test_table_formats () =
  Alcotest.check Alcotest.string "pct" "12.5%" (Harness.Table.fmt_pct 0.125);
  Alcotest.check Alcotest.string "float" "3.14"
    (Harness.Table.fmt_float 3.14159);
  Alcotest.check Alcotest.string "float decimals" "3.1416"
    (Harness.Table.fmt_float ~decimals:4 3.14159);
  Alcotest.check Alcotest.string "kb rounds up" "2"
    (Harness.Table.fmt_kb 1025);
  Alcotest.check Alcotest.string "int" "7" (Harness.Table.fmt_int 7)

let test_table_ragged_rows () =
  let s = Harness.Table.render ~headers:[ "a"; "b"; "c" ] [ [ "1" ] ] in
  Alcotest.check Alcotest.bool "missing cells tolerated" true
    (String.length s > 0)

let suite =
  [
    ( "harness",
      [
        Alcotest.test_case "meter accounting" `Quick test_meter_accounting;
        Alcotest.test_case "meter limit" `Quick test_meter_limit;
        Alcotest.test_case "meter free floor" `Quick test_meter_free_floor;
        Alcotest.test_case "timer" `Quick test_timer;
        Alcotest.test_case "table render" `Quick test_table_render;
        Alcotest.test_case "table formats" `Quick test_table_formats;
        Alcotest.test_case "table ragged rows" `Quick test_table_ragged_rows;
      ] );
  ]
