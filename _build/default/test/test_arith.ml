(* Tests for word-level arithmetic builders against integer arithmetic. *)

module N = Circuit.Netlist
module A = Circuit.Arith

let eval_word c ~inputs w =
  let bits = Circuit.Sim.eval c ~inputs w in
  List.fold_right (fun b acc -> (2 * acc) + if b then 1 else 0) bits 0

let inputs_of_word prefix width value =
  List.init width (fun i ->
      (Printf.sprintf "%s_%d" prefix i, (value lsr i) land 1 = 1))

let test_const_word () =
  let c = N.create () in
  let w = A.const_word c 6 45 in
  Alcotest.check Alcotest.int "const roundtrip" 45 (eval_word c ~inputs:[] w)

let check_binop name width build expected =
  let c = N.create () in
  let a = A.word_input c "a" width in
  let b = A.word_input c "b" width in
  let out = build c a b in
  for x = 0 to (1 lsl width) - 1 do
    for y = 0 to (1 lsl width) - 1 do
      let inputs = inputs_of_word "a" width x @ inputs_of_word "b" width y in
      let got = eval_word c ~inputs out in
      let want = expected x y in
      if got <> want then
        Alcotest.failf "%s: %d op %d = %d, expected %d" name x y got want
    done
  done

let test_add () =
  check_binop "add" 4 (fun c a b -> A.add c a b) (fun x y -> x + y)

let test_add_mod () =
  check_binop "add_mod" 4
    (fun c a b -> A.add_mod c a b 4)
    (fun x y -> (x + y) land 0xf)

let test_sub_mod () =
  check_binop "sub_mod" 4
    (fun c a b -> A.sub_mod c a b 4)
    (fun x y -> (x - y) land 0xf)

let test_mul_shift_add () =
  check_binop "mul_shift_add" 3
    (fun c a b -> A.mul_shift_add c a b)
    (fun x y -> x * y)

let test_mul_msb_first () =
  check_binop "mul_msb_first" 3
    (fun c a b -> A.mul_msb_first c a b)
    (fun x y -> x * y)

let test_bitwise () =
  check_binop "word_and" 3 (fun c a b -> A.word_and c a b) ( land );
  check_binop "word_or" 3 (fun c a b -> A.word_or c a b) ( lor );
  check_binop "word_xor" 3 (fun c a b -> A.word_xor c a b) ( lxor )

let test_equal () =
  let c = N.create () in
  let a = A.word_input c "a" 3 in
  let b = A.word_input c "b" 3 in
  let eq = A.equal c a b in
  for x = 0 to 7 do
    for y = 0 to 7 do
      let inputs = inputs_of_word "a" 3 x @ inputs_of_word "b" 3 y in
      let got = Circuit.Sim.eval1 c ~inputs eq in
      if got <> (x = y) then Alcotest.failf "equal %d %d wrong" x y
    done
  done

let test_zero_extend () =
  let c = N.create () in
  let a = A.word_input c "a" 3 in
  let w = A.zero_extend c a 6 in
  Alcotest.check Alcotest.int "width" 6 (List.length w);
  Alcotest.check Alcotest.int "value preserved" 5
    (eval_word c ~inputs:(inputs_of_word "a" 3 5) w)

let test_mux_word () =
  let c = N.create () in
  let s = N.input c "s" in
  let a = A.word_input c "a" 3 in
  let b = A.word_input c "b" 3 in
  let m = A.mux_word c ~sel:s ~if_true:a ~if_false:b in
  let inputs vs = (("s", vs) :: inputs_of_word "a" 3 6) @ inputs_of_word "b" 3 1 in
  Alcotest.check Alcotest.int "sel=1" 6 (eval_word c ~inputs:(inputs true) m);
  Alcotest.check Alcotest.int "sel=0" 1 (eval_word c ~inputs:(inputs false) m)

let test_alu () =
  let width = 4 in
  let c = N.create () in
  let op = A.word_input c "op" 2 in
  let a = A.word_input c "a" width in
  let b = A.word_input c "b" width in
  let out = A.alu c ~op ~a ~b ~width in
  let expected o x y =
    match o with
    | 0 -> (x + y) land 0xf
    | 1 -> (x - y) land 0xf
    | 2 -> x land y
    | _ -> x lxor y
  in
  for o = 0 to 3 do
    for x = 0 to 15 do
      for y = 0 to 15 do
        let inputs =
          inputs_of_word "op" 2 o @ inputs_of_word "a" width x
          @ inputs_of_word "b" width y
        in
        let got = eval_word c ~inputs out in
        if got <> expected o x y then
          Alcotest.failf "alu op=%d %d,%d: got %d want %d" o x y got
            (expected o x y)
      done
    done
  done

(* random-width property: both multipliers agree with integer product *)
let prop_multipliers_agree =
  Helpers.qtest ~count:40 "multipliers = integer product"
    QCheck.(triple (int_bound 4) small_int small_int)
    (fun (w, x, y) ->
      let width = 1 + w in
      let x = x land ((1 lsl width) - 1) in
      let y = y land ((1 lsl width) - 1) in
      let c = N.create () in
      let a = A.word_input c "a" width in
      let b = A.word_input c "b" width in
      let p1 = A.mul_shift_add c a b in
      let p2 = A.mul_msb_first c a b in
      let inputs = inputs_of_word "a" width x @ inputs_of_word "b" width y in
      eval_word c ~inputs p1 = x * y && eval_word c ~inputs p2 = x * y)

let suite =
  [
    ( "arith",
      [
        Alcotest.test_case "const word" `Quick test_const_word;
        Alcotest.test_case "ripple add" `Quick test_add;
        Alcotest.test_case "modular add" `Quick test_add_mod;
        Alcotest.test_case "modular sub" `Quick test_sub_mod;
        Alcotest.test_case "shift-add multiplier" `Quick test_mul_shift_add;
        Alcotest.test_case "msb-first multiplier" `Quick test_mul_msb_first;
        Alcotest.test_case "bitwise ops" `Quick test_bitwise;
        Alcotest.test_case "equality" `Quick test_equal;
        Alcotest.test_case "zero extend" `Quick test_zero_extend;
        Alcotest.test_case "mux word" `Quick test_mux_word;
        Alcotest.test_case "alu" `Quick test_alu;
        prop_multipliers_agree;
      ] );
  ]
