(* Tests for the checker's stamp-based resolution engine, including
   agreement with the reference Clause.resolve. *)

let engine () = Checker.Resolution.create_engine ~nvars:64

let resolve e c1 c2 =
  Checker.Resolution.resolve e ~context:"test" ~c1_id:1 ~c2_id:2 c1 c2

let sorted c = List.sort Int.compare (Sat.Clause.to_ints c)

let test_basic () =
  let e = engine () in
  let r, pivot =
    resolve e (Sat.Clause.of_ints [ 1; 2 ]) (Sat.Clause.of_ints [ -2; 3 ])
  in
  Alcotest.check Alcotest.int "pivot" 2 pivot;
  Alcotest.check (Alcotest.list Alcotest.int) "resolvent" [ 1; 3 ] (sorted r)

let test_dedup () =
  let e = engine () in
  let r, _ =
    resolve e (Sat.Clause.of_ints [ 1; 3; 5 ]) (Sat.Clause.of_ints [ -1; 3; 5 ])
  in
  Alcotest.check (Alcotest.list Alcotest.int) "shared literals once"
    [ 3; 5 ] (sorted r)

let test_empty_resolvent () =
  let e = engine () in
  let r, _ = resolve e (Sat.Clause.of_ints [ 9 ]) (Sat.Clause.of_ints [ -9 ]) in
  Alcotest.check Alcotest.int "empty" 0 (Sat.Clause.size r)

let expect_failure f pred name =
  try
    ignore (f ());
    Alcotest.failf "%s: no failure raised" name
  with Checker.Diagnostics.Check_failed d ->
    if not (pred d) then
      Alcotest.failf "%s: wrong diagnostic %s" name
        (Checker.Diagnostics.to_string d)

let test_no_clash () =
  let e = engine () in
  expect_failure
    (fun () -> resolve e (Sat.Clause.of_ints [ 1; 2 ]) (Sat.Clause.of_ints [ 2; 3 ]))
    (function Checker.Diagnostics.No_clash _ -> true | _ -> false)
    "no clash"

let test_multiple_clash () =
  let e = engine () in
  expect_failure
    (fun () ->
      resolve e (Sat.Clause.of_ints [ 1; 2; 5 ]) (Sat.Clause.of_ints [ -1; -2 ]))
    (function
      | Checker.Diagnostics.Multiple_clash m -> m.vars = [ 1; 2 ]
      | _ -> false)
    "multiple clash"

let test_engine_reuse () =
  (* stale stamps from earlier rounds must not leak *)
  let e = engine () in
  ignore (resolve e (Sat.Clause.of_ints [ 1; 2 ]) (Sat.Clause.of_ints [ -2; 3 ]));
  let r, _ =
    resolve e (Sat.Clause.of_ints [ 4; 5 ]) (Sat.Clause.of_ints [ -5; 6 ])
  in
  Alcotest.check (Alcotest.list Alcotest.int) "second round clean" [ 4; 6 ]
    (sorted r)

let test_chain_single () =
  let e = engine () in
  let fetch = function
    | 1 -> Sat.Clause.of_ints [ 1; 2 ]
    | _ -> Alcotest.fail "unexpected fetch"
  in
  let c, steps =
    Checker.Resolution.chain e ~context:"test" ~fetch ~learned_id:9 [| 1 |]
  in
  Alcotest.check Alcotest.int "no steps" 0 steps;
  Alcotest.check (Alcotest.list Alcotest.int) "clause itself" [ 1; 2 ] (sorted c)

let test_chain_sequence () =
  (* (1 2)(−2 3)(−3 4) chains to (1 4) in two steps *)
  let clauses =
    [| [||]; Sat.Clause.of_ints [ 1; 2 ]; Sat.Clause.of_ints [ -2; 3 ];
       Sat.Clause.of_ints [ -3; 4 ] |]
  in
  let e = engine () in
  let c, steps =
    Checker.Resolution.chain e ~context:"test"
      ~fetch:(fun i -> clauses.(i))
      ~learned_id:9 [| 1; 2; 3 |]
  in
  Alcotest.check Alcotest.int "two steps" 2 steps;
  Alcotest.check (Alcotest.list Alcotest.int) "chained resolvent" [ 1; 4 ]
    (sorted c)

let test_chain_empty_sources () =
  let e = engine () in
  expect_failure
    (fun () ->
      Checker.Resolution.chain e ~context:"test"
        ~fetch:(fun _ -> [||])
        ~learned_id:7 [||])
    (function Checker.Diagnostics.Empty_source_list 7 -> true | _ -> false)
    "empty sources"

(* agreement with the reference implementation on random valid pairs *)
let prop_matches_reference =
  Helpers.qtest ~count:300 "engine = Clause.resolve"
    QCheck.(small_int)
    (fun seed ->
      let rng = Sat.Rng.create seed in
      let nvars = 10 in
      let v = 1 + Sat.Rng.int rng nvars in
      let lits_without exclude n =
        List.init n (fun _ ->
            let u = ref v in
            while List.mem !u exclude do
              u := 1 + Sat.Rng.int rng nvars
            done;
            Sat.Lit.make !u (Sat.Rng.bool rng))
      in
      let c1 =
        Sat.Clause.of_lits (Sat.Lit.pos v :: lits_without [ v ] (Sat.Rng.int rng 5))
      in
      let c2 =
        Sat.Clause.of_lits (Sat.Lit.neg v :: lits_without [ v ] (Sat.Rng.int rng 5))
      in
      match Sat.Clause.clashing_vars c1 c2 with
      | [ u ] when u = v ->
        let reference = Sat.Clause.resolve c1 c2 v in
        let e = Checker.Resolution.create_engine ~nvars in
        let r, pivot =
          Checker.Resolution.resolve e ~context:"qc" ~c1_id:1 ~c2_id:2 c1 c2
        in
        pivot = v && sorted r = sorted reference
      | _ -> QCheck.assume_fail ())

let suite =
  [
    ( "resolution-engine",
      [
        Alcotest.test_case "basic" `Quick test_basic;
        Alcotest.test_case "dedup" `Quick test_dedup;
        Alcotest.test_case "empty resolvent" `Quick test_empty_resolvent;
        Alcotest.test_case "no clash" `Quick test_no_clash;
        Alcotest.test_case "multiple clash" `Quick test_multiple_clash;
        Alcotest.test_case "engine reuse" `Quick test_engine_reuse;
        Alcotest.test_case "chain single" `Quick test_chain_single;
        Alcotest.test_case "chain sequence" `Quick test_chain_sequence;
        Alcotest.test_case "chain empty" `Quick test_chain_empty_sources;
        prop_matches_reference;
      ] );
  ]
