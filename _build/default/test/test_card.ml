(* Tests for the cardinality encodings: model counts over the original
   variables match binomial expectations, and every encoding agrees with
   a direct semantic check via enumeration. *)

let binomial n k =
  let rec c n k = if k = 0 || k = n then 1 else c (n - 1) (k - 1) + c (n - 1) k in
  if k < 0 || k > n then 0 else c n k

let sum_binomials n upto =
  let acc = ref 0 in
  for k = 0 to min upto n do
    acc := !acc + binomial n k
  done;
  !acc

(* Count models of the encoding projected onto the first [n] variables
   by enumerating all assignments of the full space and checking
   satisfiability of the aux part via the solver on the restricted
   formula... simpler: enumerate assignments of originals, and for each,
   ask the CDCL solver whether the encoding is consistent with it. *)
let count_projected f n =
  let count = ref 0 in
  let total_vars = Sat.Cnf.nvars f in
  for mask = 0 to (1 lsl n) - 1 do
    let g = Sat.Cnf.create total_vars in
    Sat.Cnf.iter_clauses (fun _ c -> ignore (Sat.Cnf.add_clause g c)) f;
    for v = 1 to n do
      let lit =
        if (mask lsr (v - 1)) land 1 = 1 then Sat.Lit.pos v else Sat.Lit.neg v
      in
      ignore (Sat.Cnf.add_clause g [| lit |])
    done;
    match Solver.Cdcl.solve g with
    | Solver.Cdcl.Sat _, _ -> incr count
    | Solver.Cdcl.Unsat, _ -> ()
  done;
  !count

let lits n = List.init n (fun i -> Sat.Lit.pos (i + 1))

let test_pairwise_amo () =
  for n = 1 to 6 do
    let f = Sat.Cnf.create n in
    Sat.Card.at_most_one_pairwise f (lits n);
    Alcotest.check Alcotest.int
      (Printf.sprintf "amo pairwise n=%d" n)
      (n + 1) (* zero or one true *)
      (Solver.Enumerate.count_models f
       * (1 lsl (n - Sat.Cnf.num_distinct_vars f)))
  done

let test_sequential_amo () =
  for n = 2 to 7 do
    (* size the variable space generously for auxiliaries *)
    let f = Sat.Cnf.create (2 * n + 2) in
    let fresh, _used = Sat.Card.allocator ~first:(n + 1) in
    Sat.Card.at_most_one_sequential f fresh (lits n);
    Alcotest.check Alcotest.int
      (Printf.sprintf "amo sequential n=%d" n)
      (n + 1)
      (count_projected f n)
  done

let test_exactly_one () =
  for n = 1 to 6 do
    let f = Sat.Cnf.create n in
    Sat.Card.exactly_one f (lits n);
    Alcotest.check Alcotest.int
      (Printf.sprintf "exactly-one n=%d" n)
      n
      (count_projected f n)
  done

let test_at_most_k () =
  List.iter
    (fun (n, k) ->
      let f = Sat.Cnf.create (n + (n * k) + 4) in
      let fresh, _ = Sat.Card.allocator ~first:(n + 1) in
      Sat.Card.at_most_k_sequential f fresh (lits n) k;
      Alcotest.check Alcotest.int
        (Printf.sprintf "amk n=%d k=%d" n k)
        (sum_binomials n k)
        (count_projected f n))
    [ (4, 2); (5, 1); (5, 3); (6, 2); (3, 0); (4, 4) ]

let test_at_least_k () =
  List.iter
    (fun (n, k) ->
      let f = Sat.Cnf.create (n + (n * n) + 4) in
      let fresh, _ = Sat.Card.allocator ~first:(n + 1) in
      Sat.Card.at_least_k f fresh (lits n) k;
      let expected =
        let acc = ref 0 in
        for j = k to n do
          acc := !acc + binomial n j
        done;
        !acc
      in
      Alcotest.check Alcotest.int
        (Printf.sprintf "alk n=%d k=%d" n k)
        expected
        (count_projected f n))
    [ (4, 2); (5, 4); (5, 0); (4, 5) ]

let test_exactly_k () =
  List.iter
    (fun (n, k) ->
      let f = Sat.Cnf.create (n + (2 * n * n) + 8) in
      let fresh, _ = Sat.Card.allocator ~first:(n + 1) in
      Sat.Card.exactly_k f fresh (lits n) k;
      Alcotest.check Alcotest.int
        (Printf.sprintf "exk n=%d k=%d" n k)
        (binomial n k)
        (count_projected f n))
    [ (4, 2); (5, 3); (5, 0); (3, 3) ]

let test_mixed_phases () =
  (* constraints over negative literals too: at most one of ¬x1..¬x4,
     i.e. at least three of x1..x4 *)
  let n = 4 in
  let f = Sat.Cnf.create (2 * n + 2) in
  let fresh, _ = Sat.Card.allocator ~first:(n + 1) in
  Sat.Card.at_most_one_sequential f fresh
    (List.init n (fun i -> Sat.Lit.neg (i + 1)));
  Alcotest.check Alcotest.int "amo over negations"
    (binomial n n + binomial n (n - 1))
    (count_projected f n)

let test_allocator () =
  let fresh, used = Sat.Card.allocator ~first:10 in
  Alcotest.check Alcotest.int "first" 10 (fresh ());
  Alcotest.check Alcotest.int "second" 11 (fresh ());
  Alcotest.check Alcotest.int "used" 2 (used ())

let suite =
  [
    ( "cardinality",
      [
        Alcotest.test_case "pairwise AMO" `Quick test_pairwise_amo;
        Alcotest.test_case "sequential AMO" `Quick test_sequential_amo;
        Alcotest.test_case "exactly one" `Quick test_exactly_one;
        Alcotest.test_case "at most k" `Slow test_at_most_k;
        Alcotest.test_case "at least k" `Quick test_at_least_k;
        Alcotest.test_case "exactly k" `Slow test_exactly_k;
        Alcotest.test_case "mixed phases" `Quick test_mixed_phases;
        Alcotest.test_case "allocator" `Quick test_allocator;
      ] );
  ]
