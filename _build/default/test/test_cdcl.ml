(* The solver correctness battery: differential testing against the
   enumeration oracle across solver configurations, model verification on
   every SAT answer, and both checkers on every UNSAT answer — the full
   validation loop of the paper, exercised hundreds of times. *)

let cfg = Solver.Cdcl.default_config

let battery name config ~messy rounds =
  Alcotest.test_case name `Slow (fun () ->
      let n_unsat =
        Helpers.differential_battery ~config ~seed:(Hashtbl.hash name)
          ~rounds ~nvars_max:12 ~messy ()
      in
      (* the mix must actually exercise the UNSAT path *)
      if n_unsat = 0 then Alcotest.fail "battery saw no unsat instance")

let test_trivial_cases () =
  (* empty formula: satisfiable *)
  let f = Sat.Cnf.create 3 in
  (match Solver.Cdcl.solve f with
   | Solver.Cdcl.Sat a, _ ->
     Alcotest.check Alcotest.bool "model covers all vars" true
       (Sat.Model.satisfies a f)
   | Solver.Cdcl.Unsat, _ -> Alcotest.fail "empty formula is sat");
  (* empty clause: unsatisfiable with a checkable trace *)
  let g = Sat.Cnf.of_clauses 2 [ Sat.Clause.of_ints [ 1 ]; [||] ] in
  let result, _, trace = Pipeline.Validate.solve_with_trace g in
  (match result with
   | Solver.Cdcl.Unsat -> (
     match Checker.Df.check g (Trace.Reader.From_string trace) with
     | Ok _ -> ()
     | Error d -> Alcotest.failf "empty-clause trace rejected: %s"
         (Checker.Diagnostics.to_string d))
   | Solver.Cdcl.Sat _ -> Alcotest.fail "empty clause is unsat")

let test_contradicting_units () =
  let g =
    Sat.Cnf.of_clauses 2
      [ Sat.Clause.of_ints [ 1 ]; Sat.Clause.of_ints [ -1 ] ]
  in
  let result, _, trace = Pipeline.Validate.solve_with_trace g in
  match result with
  | Solver.Cdcl.Unsat -> (
    match Checker.Bf.check g (Trace.Reader.From_string trace) with
    | Ok r ->
      Alcotest.check Alcotest.int "no learned clauses needed" 0
        r.Checker.Report.total_learned
    | Error d -> Alcotest.failf "unit-conflict trace rejected: %s"
        (Checker.Diagnostics.to_string d))
  | Solver.Cdcl.Sat _ -> Alcotest.fail "x and not-x is unsat"

let test_tautologies_and_duplicates () =
  (* degenerate input: tautological clause, duplicated clauses and
     literals; must still solve correctly and produce a checkable trace *)
  let g =
    Sat.Cnf.of_clauses 3
      [
        Sat.Clause.of_ints [ 1; -1; 2 ];
        Sat.Clause.of_ints [ 1; 1; 2 ];
        Sat.Clause.of_ints [ 1; 2 ];
        Sat.Clause.of_ints [ -1; -2; -2 ];
        Sat.Clause.of_ints [ 1; -2 ];
        Sat.Clause.of_ints [ -1; 2; 3 ];
        Sat.Clause.of_ints [ -3; -1 ];
      ]
  in
  let oracle = Solver.Enumerate.solve g in
  let result, _, trace = Pipeline.Validate.solve_with_trace g in
  Alcotest.check Alcotest.bool "status matches oracle" true
    (Helpers.same_status oracle result);
  match result with
  | Solver.Cdcl.Unsat -> (
    match Checker.Df.check g (Trace.Reader.From_string trace) with
    | Ok _ -> ()
    | Error d -> Alcotest.failf "degenerate trace rejected: %s"
        (Checker.Diagnostics.to_string d))
  | Solver.Cdcl.Sat a ->
    Alcotest.check Alcotest.bool "model" true (Sat.Model.satisfies a g)

let test_stats_sanity () =
  let f = Gen.Php.unsat ~holes:5 in
  let _, stats = Solver.Cdcl.solve f in
  Alcotest.check Alcotest.bool "conflicts positive" true (stats.conflicts > 0);
  Alcotest.check Alcotest.bool "decisions positive" true (stats.decisions > 0);
  Alcotest.check Alcotest.bool "learned bounded by conflicts" true
    (stats.learned_clauses <= stats.conflicts);
  Alcotest.check Alcotest.bool "max level sane" true
    (stats.max_decision_level <= Sat.Cnf.nvars f)

let test_determinism () =
  let f = Gen.Php.unsat ~holes:5 in
  let _, s1, t1 = Pipeline.Validate.solve_with_trace f in
  let _, s2, t2 = Pipeline.Validate.solve_with_trace f in
  Alcotest.check Alcotest.int "same conflicts" s1.conflicts s2.conflicts;
  Alcotest.check Alcotest.bool "identical traces" true (t1 = t2)

let test_seed_changes_search () =
  let f = Gen.Php.unsat ~holes:6 in
  let _, s1 = Solver.Cdcl.solve ~config:{ cfg with seed = 1 } f in
  let _, s2 = Solver.Cdcl.solve ~config:{ cfg with seed = 2 } f in
  (* different random decisions almost surely give different statistics *)
  Alcotest.check Alcotest.bool "searches differ" true
    (s1.conflicts <> s2.conflicts || s1.decisions <> s2.decisions)

let test_minimization_traces_verified () =
  let f = Gen.Php.unsat ~holes:6 in
  let on = { cfg with enable_minimization = true } in
  let _, stats_on, _ = Pipeline.Validate.solve_with_trace ~config:on f in
  let _, stats_off, _ = Pipeline.Validate.solve_with_trace f in
  (* shorter clauses on average *)
  let avg (s : Solver.Cdcl.stats) =
    float_of_int s.learned_literals /. float_of_int (max 1 s.learned_clauses)
  in
  Alcotest.check Alcotest.bool "average clause shrinks" true
    (avg stats_on <= avg stats_off);
  (* and the richer source lists still check with all three checkers *)
  let o = Pipeline.Validate.run ~config:on f in
  let o2 =
    Pipeline.Validate.run ~config:on
      ~strategy:Pipeline.Validate.Breadth_first f
  in
  let o3 =
    Pipeline.Validate.run ~config:on ~strategy:Pipeline.Validate.Hybrid f
  in
  List.iter
    (fun (v : Pipeline.Validate.outcome) ->
      match v.verdict with
      | Pipeline.Validate.Unsat_verified _ -> ()
      | Pipeline.Validate.Sat_verified _
      | Pipeline.Validate.Sat_model_wrong _
      | Pipeline.Validate.Unsat_check_failed _ ->
        Alcotest.fail "minimized trace did not verify")
    [ o; o2; o3 ]

let test_counting_equals_watched () =
  (* both BCP schemes must agree instance by instance *)
  let rng = Sat.Rng.create 4242 in
  for _ = 1 to 60 do
    let nvars = 4 + Sat.Rng.int rng 10 in
    let f =
      Helpers.random_messy_cnf rng ~nvars ~nclauses:(1 + Sat.Rng.int rng 40)
    in
    let r1, _ = Solver.Cdcl.solve ~config:{ cfg with bcp = Two_watched } f in
    let r2, _ = Solver.Cdcl.solve ~config:{ cfg with bcp = Counting } f in
    if not (Helpers.same_status r1 r2) then
      Alcotest.failf "BCP schemes disagree: %s vs %s"
        (Helpers.status_to_string r1) (Helpers.status_to_string r2)
  done

let suite =
  [
    ( "cdcl",
      [
        Alcotest.test_case "trivial cases" `Quick test_trivial_cases;
        Alcotest.test_case "contradicting units" `Quick
          test_contradicting_units;
        Alcotest.test_case "degenerate clauses" `Quick
          test_tautologies_and_duplicates;
        Alcotest.test_case "stats sanity" `Quick test_stats_sanity;
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_search;
        Alcotest.test_case "minimization verified" `Quick
          test_minimization_traces_verified;
        Alcotest.test_case "counting = watched" `Slow
          test_counting_equals_watched;
        battery "differential: default config" cfg ~messy:false 150;
        battery "differential: messy formulas" cfg ~messy:true 150;
        battery "differential: counting BCP"
          { cfg with bcp = Counting } ~messy:true 80;
        battery "differential: no restarts"
          { cfg with enable_restarts = false } ~messy:false 80;
        battery "differential: no deletion"
          { cfg with enable_deletion = false } ~messy:false 80;
        battery "differential: aggressive deletion"
          { cfg with max_learned_factor = 0.05; max_learned_inc = 1.01 }
          ~messy:false 80;
        battery "differential: no random decisions"
          { cfg with random_decision_freq = 0.0 } ~messy:true 80;
        battery "differential: heavy random decisions"
          { cfg with random_decision_freq = 0.5 } ~messy:true 80;
        battery "differential: tiny restart interval"
          { cfg with restart_first = 2; restart_inc = 1.1 } ~messy:false 80;
        battery "differential: clause minimization"
          { cfg with enable_minimization = true } ~messy:true 120;
        battery "differential: luby restarts"
          { cfg with restart_sequence = Solver.Cdcl.Luby; restart_first = 4 }
          ~messy:true 80;
      ] );
  ]
