(* Unit and property tests for the resizable vector. *)

let test_push_pop () =
  let v = Sat.Vec.create ~dummy:0 in
  Alcotest.check Alcotest.bool "fresh vector is empty" true (Sat.Vec.is_empty v);
  for i = 1 to 100 do
    Sat.Vec.push v i
  done;
  Alcotest.check Alcotest.int "length after pushes" 100 (Sat.Vec.length v);
  Alcotest.check Alcotest.int "last" 100 (Sat.Vec.last v);
  Alcotest.check Alcotest.int "pop returns last" 100 (Sat.Vec.pop v);
  Alcotest.check Alcotest.int "length after pop" 99 (Sat.Vec.length v)

let test_get_set () =
  let v = Sat.Vec.make 5 7 ~dummy:0 in
  Alcotest.check Alcotest.int "make fills" 7 (Sat.Vec.get v 4);
  Sat.Vec.set v 2 42;
  Alcotest.check Alcotest.int "set/get" 42 (Sat.Vec.get v 2);
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Vec: index out of bounds") (fun () ->
      ignore (Sat.Vec.get v 5))

let test_shrink_clear () =
  let v = Sat.Vec.of_list [ 1; 2; 3; 4; 5 ] ~dummy:0 in
  Sat.Vec.shrink v 2;
  Alcotest.check (Alcotest.list Alcotest.int) "shrink keeps prefix" [ 1; 2 ]
    (Sat.Vec.to_list v);
  Sat.Vec.clear v;
  Alcotest.check Alcotest.bool "clear empties" true (Sat.Vec.is_empty v)

let test_grow_to () =
  let v = Sat.Vec.of_list [ 1 ] ~dummy:0 in
  Sat.Vec.grow_to v 4 9;
  Alcotest.check (Alcotest.list Alcotest.int) "grow_to pads" [ 1; 9; 9; 9 ]
    (Sat.Vec.to_list v);
  Sat.Vec.grow_to v 2 0;
  Alcotest.check Alcotest.int "grow_to never shrinks" 4 (Sat.Vec.length v)

let test_filter_in_place () =
  let v = Sat.Vec.of_list [ 1; 2; 3; 4; 5; 6 ] ~dummy:0 in
  Sat.Vec.filter_in_place (fun x -> x mod 2 = 0) v;
  Alcotest.check (Alcotest.list Alcotest.int) "keeps evens in order"
    [ 2; 4; 6 ] (Sat.Vec.to_list v)

let test_iter_fold () =
  let v = Sat.Vec.of_list [ 1; 2; 3 ] ~dummy:0 in
  Alcotest.check Alcotest.int "fold sums" 6 (Sat.Vec.fold ( + ) 0 v);
  let acc = ref [] in
  Sat.Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  Alcotest.check Alcotest.int "iteri visits all" 3 (List.length !acc);
  Alcotest.check Alcotest.bool "exists" true (Sat.Vec.exists (( = ) 2) v);
  Alcotest.check Alcotest.bool "exists negative" false
    (Sat.Vec.exists (( = ) 9) v)

let test_pop_empty () =
  let v = Sat.Vec.create ~dummy:0 in
  Alcotest.check_raises "pop on empty" (Invalid_argument "Vec.pop: empty")
    (fun () -> ignore (Sat.Vec.pop v))

let prop_roundtrip =
  Helpers.qtest "of_list/to_list roundtrip"
    QCheck.(list int)
    (fun xs -> Sat.Vec.to_list (Sat.Vec.of_list xs ~dummy:0) = xs)

let prop_to_array =
  Helpers.qtest "to_array agrees with to_list"
    QCheck.(list int)
    (fun xs ->
      let v = Sat.Vec.of_list xs ~dummy:0 in
      Array.to_list (Sat.Vec.to_array v) = Sat.Vec.to_list v)

let prop_filter =
  Helpers.qtest "filter_in_place = List.filter"
    QCheck.(list small_int)
    (fun xs ->
      let v = Sat.Vec.of_list xs ~dummy:0 in
      Sat.Vec.filter_in_place (fun x -> x mod 3 <> 0) v;
      Sat.Vec.to_list v = List.filter (fun x -> x mod 3 <> 0) xs)

let suite =
  [
    ( "vec",
      [
        Alcotest.test_case "push/pop/last" `Quick test_push_pop;
        Alcotest.test_case "get/set bounds" `Quick test_get_set;
        Alcotest.test_case "shrink/clear" `Quick test_shrink_clear;
        Alcotest.test_case "grow_to" `Quick test_grow_to;
        Alcotest.test_case "filter_in_place" `Quick test_filter_in_place;
        Alcotest.test_case "iter/fold/exists" `Quick test_iter_fold;
        Alcotest.test_case "pop empty raises" `Quick test_pop_empty;
        prop_roundtrip;
        prop_to_array;
        prop_filter;
      ] );
  ]
