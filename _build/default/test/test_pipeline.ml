(* Tests for the end-to-end validation workflow and the §4 unsat-core
   extraction/iteration. *)

let test_validate_sat () =
  let rng = Sat.Rng.create 321 in
  let f = Helpers.random_3sat rng ~nvars:20 ~nclauses:40 in
  let o = Pipeline.Validate.run f in
  match o.verdict with
  | Pipeline.Validate.Sat_verified a ->
    Alcotest.check Alcotest.bool "model verified" true
      (Sat.Model.satisfies a f)
  | Pipeline.Validate.Unsat_verified _ -> Alcotest.fail "sparse 3sat is sat"
  | Pipeline.Validate.Sat_model_wrong _ -> Alcotest.fail "model wrong"
  | Pipeline.Validate.Unsat_check_failed _ -> Alcotest.fail "check failed"

let test_validate_unsat_both_strategies () =
  let f = Gen.Php.unsat ~holes:4 in
  List.iter
    (fun strategy ->
      let o = Pipeline.Validate.run ~strategy f in
      match o.verdict with
      | Pipeline.Validate.Unsat_verified r ->
        Alcotest.check Alcotest.bool "some resolution happened" true
          (r.Checker.Report.resolution_steps > 0);
        Alcotest.check Alcotest.bool "trace was produced" true
          (o.trace_bytes > 0)
      | Pipeline.Validate.Sat_verified _ | Pipeline.Validate.Sat_model_wrong _
      | Pipeline.Validate.Unsat_check_failed _ ->
        Alcotest.fail "php must be unsat-verified")
    [ Pipeline.Validate.Depth_first; Pipeline.Validate.Breadth_first ]

let test_validate_binary_format () =
  let f = Gen.Php.unsat ~holes:4 in
  let o = Pipeline.Validate.run ~format:Trace.Writer.Binary f in
  match o.verdict with
  | Pipeline.Validate.Unsat_verified _ -> ()
  | _ -> Alcotest.fail "binary-format validation failed"

let test_extract_sat_formula () =
  let f = Sat.Cnf.of_clauses 2 [ Sat.Clause.of_ints [ 1; 2 ] ] in
  match Pipeline.Unsat_core.extract f with
  | Error `Sat -> ()
  | Error (`Check_failed _) -> Alcotest.fail "check failed"
  | Ok _ -> Alcotest.fail "sat formula produced a core"

let test_extract_core_properties () =
  let f = Gen.Php.unsat ~holes:4 in
  match Pipeline.Unsat_core.extract f with
  | Error _ -> Alcotest.fail "extraction failed"
  | Ok core ->
    Alcotest.check Alcotest.int "count consistent"
      (List.length core.clause_indices) core.num_clauses;
    Alcotest.check Alcotest.bool "indices in range" true
      (List.for_all
         (fun i -> i >= 0 && i < Sat.Cnf.nclauses f)
         core.clause_indices);
    Alcotest.check Alcotest.bool "core nonempty" true (core.num_clauses > 0);
    (* the core itself must be unsatisfiable *)
    let g = Sat.Cnf.restrict_to f core.clause_indices in
    (match Solver.Cdcl.solve g with
     | Solver.Cdcl.Unsat, _ -> ()
     | Solver.Cdcl.Sat _, _ -> Alcotest.fail "core is satisfiable")

let test_shrink_monotone_and_fixpoint () =
  let f = Gen.Php.unsat ~holes:4 in
  match Pipeline.Unsat_core.shrink ~max_rounds:30 f with
  | Error _ -> Alcotest.fail "shrink failed"
  | Ok s ->
    Alcotest.check Alcotest.bool "ran at least one round" true (s.rounds >= 1);
    (* sizes never increase *)
    let sizes =
      s.initial.clauses :: List.map (fun (it : Pipeline.Unsat_core.iteration) -> it.clauses) s.iterations
    in
    let rec non_increasing = function
      | a :: (b :: _ as rest) -> a >= b && non_increasing rest
      | [ _ ] | [] -> true
    in
    Alcotest.check Alcotest.bool "monotone" true (non_increasing sizes);
    (* the final core is unsat and matches final_indices *)
    Alcotest.check Alcotest.int "final indices count"
      (Sat.Cnf.nclauses s.final_core)
      (List.length s.final_indices);
    (match Solver.Cdcl.solve s.final_core with
     | Solver.Cdcl.Unsat, _ -> ()
     | Solver.Cdcl.Sat _, _ -> Alcotest.fail "final core satisfiable");
    (* indices must actually pick those clauses from the input *)
    List.iteri
      (fun pos idx ->
        if
          Sat.Clause.to_ints (Sat.Cnf.clause s.final_core pos)
          <> Sat.Clause.to_ints (Sat.Cnf.clause f idx)
        then Alcotest.fail "final_indices do not match final_core")
      s.final_indices;
    if s.reached_fixpoint then
      (* one more extraction must keep every clause *)
      match Pipeline.Unsat_core.extract s.final_core with
      | Ok core ->
        Alcotest.check Alcotest.int "fixpoint really fixed"
          (Sat.Cnf.nclauses s.final_core) core.num_clauses
      | Error _ -> Alcotest.fail "re-extraction failed"

let test_routing_core_small () =
  (* the Table 3 story: the unroutable clique dominates the core *)
  let f =
    Gen.Routing.channel (Sat.Rng.create 99) ~nets:80 ~tracks:4
      ~extra_conflict_density:0.03
  in
  match Pipeline.Unsat_core.shrink ~max_rounds:10 f with
  | Error _ -> Alcotest.fail "routing shrink failed"
  | Ok s ->
    let final = Sat.Cnf.nclauses s.final_core in
    Alcotest.check Alcotest.bool
      (Printf.sprintf "core (%d) much smaller than formula (%d)" final
         (Sat.Cnf.nclauses f))
      true
      (final * 3 < Sat.Cnf.nclauses f)

let test_planning_core_small () =
  let f = Gen.Planning.unreachable_goal ~width:8 ~height:8 ~horizon:10 in
  match Pipeline.Unsat_core.extract f with
  | Error _ -> Alcotest.fail "planning extraction failed"
  | Ok core ->
    Alcotest.check Alcotest.bool
      (Printf.sprintf "core (%d) smaller than formula (%d)" core.num_clauses
         (Sat.Cnf.nclauses f))
      true
      (core.num_clauses * 2 < Sat.Cnf.nclauses f)

let test_shrink_max_rounds_respected () =
  let f = Gen.Php.unsat ~holes:4 in
  match Pipeline.Unsat_core.shrink ~max_rounds:1 f with
  | Error _ -> Alcotest.fail "shrink failed"
  | Ok s -> Alcotest.check Alcotest.bool "at most 1 round" true (s.rounds <= 1)

let suite =
  [
    ( "validate",
      [
        Alcotest.test_case "sat verified" `Quick test_validate_sat;
        Alcotest.test_case "unsat verified (df+bf)" `Quick
          test_validate_unsat_both_strategies;
        Alcotest.test_case "binary trace format" `Quick
          test_validate_binary_format;
      ] );
    ( "unsat-core",
      [
        Alcotest.test_case "sat formula" `Quick test_extract_sat_formula;
        Alcotest.test_case "core properties" `Quick
          test_extract_core_properties;
        Alcotest.test_case "shrink monotone + fixpoint" `Quick
          test_shrink_monotone_and_fixpoint;
        Alcotest.test_case "routing core small" `Slow test_routing_core_small;
        Alcotest.test_case "planning core small" `Quick
          test_planning_core_small;
        Alcotest.test_case "max rounds respected" `Quick
          test_shrink_max_rounds_respected;
      ] );
  ]
