(* Tests for the workload generators: expected satisfiability status of
   every family, SAT/UNSAT control pairs, and structural properties. *)

let is_unsat f =
  match Solver.Cdcl.solve f with
  | Solver.Cdcl.Unsat, _ -> true
  | Solver.Cdcl.Sat _, _ -> false

let expect_unsat name f =
  if not (is_unsat f) then Alcotest.failf "%s should be unsat" name

let expect_sat name f =
  if is_unsat f then Alcotest.failf "%s should be sat" name

let test_php_statuses () =
  expect_unsat "php(5,4)" (Gen.Php.generate ~pigeons:5 ~holes:4);
  expect_sat "php(4,4)" (Gen.Php.generate ~pigeons:4 ~holes:4);
  expect_sat "php(3,4)" (Gen.Php.generate ~pigeons:3 ~holes:4)

let test_php_oracle () =
  (* n pigeons in n holes: exactly n! placements *)
  let f = Gen.Php.generate ~pigeons:3 ~holes:3 in
  Alcotest.check Alcotest.int "3! models" 6 (Solver.Enumerate.count_models f)

let test_parity () =
  expect_unsat "odd cycle 8" (Gen.Parity.odd_cycle 8);
  expect_unsat "odd cycle 9" (Gen.Parity.odd_cycle 9);
  expect_unsat "chain parity=1" (Gen.Parity.chain ~parity:true 20);
  expect_sat "chain parity=0" (Gen.Parity.chain ~parity:false 20)

let test_random3sat_shape () =
  let rng = Sat.Rng.create 31 in
  let f = Gen.Random3sat.generate rng ~nvars:30 ~nclauses:100 in
  Alcotest.check Alcotest.int "clause count" 100 (Sat.Cnf.nclauses f);
  Sat.Cnf.iter_clauses
    (fun i c ->
      if Sat.Clause.size c <> 3 then Alcotest.failf "clause %d not ternary" i;
      let vars = List.map abs (Sat.Clause.to_ints c) in
      if List.sort_uniq Int.compare vars <> List.sort Int.compare vars then
        Alcotest.failf "clause %d repeats a variable" i)
    f

let test_equiv_pair () =
  let rng = Sat.Rng.create 41 in
  expect_unsat "equiv correct" (Gen.Equiv.miter rng ~inputs:5 ~outputs:3);
  let rng = Sat.Rng.create 41 in
  expect_sat "equiv buggy" (Gen.Equiv.miter_buggy rng ~inputs:5 ~outputs:3)

let test_multiplier_pair () =
  expect_unsat "multiplier correct" (Gen.Multiplier.miter ~width:3);
  expect_unsat "multiplier high bits"
    (Gen.Multiplier.miter_high_bits ~width:4 ~bits:3);
  expect_sat "multiplier buggy" (Gen.Multiplier.miter_buggy ~width:3)

let test_multiplier_bug_is_real () =
  (* the SAT model of the buggy miter must be a genuine counterexample *)
  let f = Gen.Multiplier.miter_buggy ~width:3 in
  match Solver.Cdcl.solve f with
  | Solver.Cdcl.Sat a, _ ->
    Alcotest.check Alcotest.bool "model verified" true
      (Sat.Model.satisfies a f)
  | Solver.Cdcl.Unsat, _ -> Alcotest.fail "buggy miter unsat"

let test_pipeline_pair () =
  expect_unsat "pipeline correct"
    (Gen.Pipeline_cpu.correct ~regs:2 ~width:2 ~depth:2);
  expect_sat "pipeline missing forwarding"
    (Gen.Pipeline_cpu.buggy ~regs:2 ~width:2 ~depth:2)

let test_bmc_counter () =
  expect_unsat "target beyond horizon"
    (Gen.Bmc.counter_reach ~width:5 ~steps:6 ~target:10);
  expect_sat "target within horizon"
    (Gen.Bmc.counter_reach ~width:5 ~steps:12 ~target:10);
  try
    ignore (Gen.Bmc.counter_reach ~width:3 ~steps:4 ~target:9);
    Alcotest.fail "oversized target accepted"
  with Invalid_argument _ -> ()

let test_bmc_token_ring () =
  expect_unsat "one-hot invariant holds" (Gen.Bmc.token_ring ~nodes:5 ~steps:7)

let test_routing_pair () =
  expect_unsat "over-subscribed channel"
    (Gen.Routing.channel (Sat.Rng.create 7) ~nets:12 ~tracks:3
       ~extra_conflict_density:0.1);
  expect_sat "lightly loaded channel"
    (Gen.Routing.routable (Sat.Rng.create 7) ~nets:10 ~tracks:5
       ~conflict_density:0.1)

let test_planning_pair () =
  expect_unsat "horizon too short"
    (Gen.Planning.unreachable_goal ~width:5 ~height:5 ~horizon:7);
  expect_sat "horizon long enough"
    (Gen.Planning.reachable_goal ~width:5 ~height:5 ~horizon:8)

let test_families_registry () =
  Alcotest.check Alcotest.bool "suite nonempty" true
    (List.length (Gen.Families.suite ()) >= 10);
  (match Gen.Families.find "php_8" with
   | Some fam ->
     Alcotest.check Alcotest.string "analogue recorded" "hole-n (control)"
       fam.paper_analogue
   | None -> Alcotest.fail "php_8 not found");
  Alcotest.check Alcotest.bool "unknown name" true
    (Gen.Families.find "no_such_family" = None);
  (* names are unique *)
  let names = Gen.Families.names () in
  Alcotest.check Alcotest.int "unique names"
    (List.length names)
    (List.length (List.sort_uniq String.compare names))

let test_families_deterministic () =
  List.iter
    (fun (fam : Gen.Families.family) ->
      let a = Sat.Dimacs.to_string (fam.generate ()) in
      let b = Sat.Dimacs.to_string (fam.generate ()) in
      if a <> b then Alcotest.failf "%s not deterministic" fam.name)
    (Gen.Families.quick ())

let suite =
  [
    ( "generators",
      [
        Alcotest.test_case "php statuses" `Quick test_php_statuses;
        Alcotest.test_case "php model count" `Quick test_php_oracle;
        Alcotest.test_case "parity" `Quick test_parity;
        Alcotest.test_case "random 3-sat shape" `Quick test_random3sat_shape;
        Alcotest.test_case "equiv pair" `Quick test_equiv_pair;
        Alcotest.test_case "multiplier pair" `Quick test_multiplier_pair;
        Alcotest.test_case "multiplier bug is real" `Quick
          test_multiplier_bug_is_real;
        Alcotest.test_case "pipeline pair" `Slow test_pipeline_pair;
        Alcotest.test_case "bmc counter" `Quick test_bmc_counter;
        Alcotest.test_case "bmc token ring" `Quick test_bmc_token_ring;
        Alcotest.test_case "routing pair" `Quick test_routing_pair;
        Alcotest.test_case "planning pair" `Quick test_planning_pair;
        Alcotest.test_case "families registry" `Quick test_families_registry;
        Alcotest.test_case "families deterministic" `Quick
          test_families_deterministic;
      ] );
  ]

let test_routing_capacity () =
  (* unsat iff nets > tracks * capacity *)
  Helpers.check Helpers.bool_t "7 nets, 3x2 capacity" true
    (match Solver.Cdcl.solve (Gen.Routing.capacity ~nets:7 ~tracks:3 ~capacity:2) with
     | Solver.Cdcl.Unsat, _ -> true
     | Solver.Cdcl.Sat _, _ -> false);
  match Solver.Cdcl.solve (Gen.Routing.capacity ~nets:6 ~tracks:3 ~capacity:2) with
  | Solver.Cdcl.Sat a, _ ->
    Helpers.check Helpers.bool_t "6 nets fit and model verifies" true
      (Sat.Model.satisfies a (Gen.Routing.capacity ~nets:6 ~tracks:3 ~capacity:2))
  | Solver.Cdcl.Unsat, _ -> Alcotest.fail "6 nets should fit 3x2"

let test_routing_capacity_checkable () =
  let f = Gen.Routing.capacity ~nets:9 ~tracks:4 ~capacity:2 in
  let o = Pipeline.Validate.run f in
  match o.verdict with
  | Pipeline.Validate.Unsat_verified _ -> ()
  | _ -> Alcotest.fail "capacity instance not unsat-verified"

let suite =
  suite
  @ [
      ( "routing-capacity",
        [
          Alcotest.test_case "status boundary" `Quick test_routing_capacity;
          Alcotest.test_case "proof checkable" `Quick
            test_routing_capacity_checkable;
        ] );
    ]
