(* Tests for the deterministic PRNG. *)

let test_determinism () =
  let a = Sat.Rng.create 1234 and b = Sat.Rng.create 1234 in
  for _ = 1 to 1000 do
    Alcotest.check Alcotest.int "same seed, same stream" (Sat.Rng.int a 1000)
      (Sat.Rng.int b 1000)
  done

let test_seed_sensitivity () =
  let a = Sat.Rng.create 1 and b = Sat.Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 100 do
    if Sat.Rng.int a 1_000_000 = Sat.Rng.int b 1_000_000 then incr same
  done;
  Alcotest.check Alcotest.bool "different seeds diverge" true (!same < 5)

let test_int_range () =
  let rng = Sat.Rng.create 7 in
  for _ = 1 to 10_000 do
    let x = Sat.Rng.int rng 17 in
    if x < 0 || x >= 17 then Alcotest.failf "out of range: %d" x
  done

let test_int_coverage () =
  let rng = Sat.Rng.create 8 in
  let seen = Array.make 10 false in
  for _ = 1 to 1000 do
    seen.(Sat.Rng.int rng 10) <- true
  done;
  Alcotest.check Alcotest.bool "all residues hit" true
    (Array.for_all (fun b -> b) seen)

let test_float_range () =
  let rng = Sat.Rng.create 9 in
  for _ = 1 to 10_000 do
    let x = Sat.Rng.float rng in
    if x < 0.0 || x >= 1.0 then Alcotest.failf "float out of range: %f" x
  done

let test_bool_balance () =
  let rng = Sat.Rng.create 10 in
  let trues = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Sat.Rng.bool rng then incr trues
  done;
  let ratio = float_of_int !trues /. float_of_int n in
  Alcotest.check Alcotest.bool "bool is roughly fair" true
    (ratio > 0.45 && ratio < 0.55)

let test_shuffle_permutation () =
  let rng = Sat.Rng.create 11 in
  let arr = Array.init 50 (fun i -> i) in
  Sat.Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  Alcotest.check Alcotest.bool "shuffle is a permutation" true
    (sorted = Array.init 50 (fun i -> i));
  Alcotest.check Alcotest.bool "shuffle moved something" true
    (arr <> Array.init 50 (fun i -> i))

let test_split_independent () =
  let rng = Sat.Rng.create 12 in
  let child = Sat.Rng.split rng in
  (* drawing from the child must not replay the parent stream *)
  let c = List.init 20 (fun _ -> Sat.Rng.int child 1000) in
  let p = List.init 20 (fun _ -> Sat.Rng.int rng 1000) in
  Alcotest.check Alcotest.bool "parent and child streams differ" true (c <> p)

let test_invalid_bound () =
  let rng = Sat.Rng.create 13 in
  Alcotest.check_raises "bound 0 rejected"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Sat.Rng.int rng 0))

let suite =
  [
    ( "rng",
      [
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
        Alcotest.test_case "int range" `Quick test_int_range;
        Alcotest.test_case "int coverage" `Quick test_int_coverage;
        Alcotest.test_case "float range" `Quick test_float_range;
        Alcotest.test_case "bool balance" `Quick test_bool_balance;
        Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutation;
        Alcotest.test_case "split independence" `Quick test_split_independent;
        Alcotest.test_case "invalid bound" `Quick test_invalid_bound;
      ] );
  ]
