(* Tests for the CNF preprocessor and minimal-core extraction. *)

module S = Solver.Simplify

let simplify f = fst (S.simplify f)

let test_unit_chain_solved () =
  (* (x1)(¬x1 ∨ x2)(¬x2 ∨ x3): propagation alone finishes *)
  let f =
    Sat.Cnf.of_clauses 3
      [
        Sat.Clause.of_ints [ 1 ];
        Sat.Clause.of_ints [ -1; 2 ];
        Sat.Clause.of_ints [ -2; 3 ];
      ]
  in
  match simplify f with
  | S.Proved_sat a ->
    Alcotest.check Alcotest.bool "model checks" true (Sat.Model.satisfies a f)
  | S.Proved_unsat | S.Simplified _ -> Alcotest.fail "expected solved"

let test_unit_conflict () =
  let f =
    Sat.Cnf.of_clauses 2
      [ Sat.Clause.of_ints [ 1 ]; Sat.Clause.of_ints [ -1 ] ]
  in
  match simplify f with
  | S.Proved_unsat -> ()
  | S.Proved_sat _ | S.Simplified _ -> Alcotest.fail "expected unsat"

let test_pure_literals () =
  (* x1 occurs only positively, x2 only negatively: everything satisfied *)
  let f =
    Sat.Cnf.of_clauses 2
      [ Sat.Clause.of_ints [ 1; -2 ]; Sat.Clause.of_ints [ 1 ] ]
  in
  let outcome, stats = S.simplify f in
  (match outcome with
   | S.Proved_sat a ->
     Alcotest.check Alcotest.bool "model checks" true (Sat.Model.satisfies a f)
   | S.Proved_unsat | S.Simplified _ -> Alcotest.fail "expected solved");
  Alcotest.check Alcotest.bool "pure or unit stats recorded" true
    (stats.pure_literals + stats.units_propagated > 0)

let test_subsumption () =
  (* (1 2) subsumes (1 2 3); php keeps the rest busy *)
  let f =
    Sat.Cnf.of_clauses 4
      [
        Sat.Clause.of_ints [ 1; 2 ];
        Sat.Clause.of_ints [ 1; 2; 3 ];
        Sat.Clause.of_ints [ -1; -2 ];
        Sat.Clause.of_ints [ 1; -2; 4 ];
        Sat.Clause.of_ints [ -1; 2; -4 ];
      ]
  in
  let outcome, stats = S.simplify f in
  Alcotest.check Alcotest.bool "subsumed clause removed" true
    (stats.subsumed_removed >= 1);
  match outcome with
  | S.Simplified { formula; _ } ->
    Alcotest.check Alcotest.bool "fewer clauses" true
      (Sat.Cnf.nclauses formula < Sat.Cnf.nclauses f)
  | S.Proved_sat _ | S.Proved_unsat -> ()

let test_tautology_removed () =
  let f =
    Sat.Cnf.of_clauses 3
      [
        Sat.Clause.of_ints [ 1; -1; 2 ];
        Sat.Clause.of_ints [ 1; 2 ];
        Sat.Clause.of_ints [ -1; 3 ];
        Sat.Clause.of_ints [ -2; -3 ];
        Sat.Clause.of_ints [ 2; 3 ];
      ]
  in
  let _, stats = S.simplify f in
  Alcotest.check Alcotest.int "tautology dropped" 1 stats.tautologies_removed

(* equivalence: simplification preserves satisfiability and reconstructed
   models satisfy the original *)
let prop_simplify_equivalence =
  Helpers.qtest ~count:150 "simplify preserves satisfiability"
    QCheck.(small_int)
    (fun seed ->
      let rng = Sat.Rng.create (seed + 13) in
      let nvars = 4 + Sat.Rng.int rng 8 in
      let f =
        Helpers.random_messy_cnf rng ~nvars ~nclauses:(1 + Sat.Rng.int rng 35)
      in
      let oracle = Solver.Enumerate.solve f in
      match simplify f with
      | S.Proved_unsat ->
        (match oracle with Solver.Cdcl.Unsat -> true | Solver.Cdcl.Sat _ -> false)
      | S.Proved_sat a ->
        (match oracle with
         | Solver.Cdcl.Sat _ -> Sat.Model.satisfies a f
         | Solver.Cdcl.Unsat -> false)
      | S.Simplified { formula; reconstruct; _ } -> (
        match Solver.Enumerate.solve formula, oracle with
        | Solver.Cdcl.Unsat, Solver.Cdcl.Unsat -> true
        | Solver.Cdcl.Sat m, Solver.Cdcl.Sat _ ->
          Sat.Model.satisfies (reconstruct m) f
        | (Solver.Cdcl.Sat _ | Solver.Cdcl.Unsat), _ -> false))

let test_muc_minimal () =
  let f = Gen.Php.unsat ~holes:3 in
  match Pipeline.Muc.minimize f with
  | Error `Sat -> Alcotest.fail "php unsat"
  | Ok r ->
    (* the MUC is unsat *)
    (match Solver.Enumerate.solve r.formula with
     | Solver.Cdcl.Unsat -> ()
     | Solver.Cdcl.Sat _ -> Alcotest.fail "core not unsat");
    (* dropping any single clause makes it sat: true minimality *)
    let n = Sat.Cnf.nclauses r.formula in
    for drop = 0 to n - 1 do
      let rest = List.filter (fun i -> i <> drop) (List.init n (fun i -> i)) in
      match Solver.Enumerate.solve (Sat.Cnf.restrict_to r.formula rest) with
      | Solver.Cdcl.Sat _ -> ()
      | Solver.Cdcl.Unsat -> Alcotest.failf "clause %d is redundant" drop
    done

let test_muc_on_routing () =
  (* the MUC of an over-subscribed channel is within the planted clique *)
  let nets = 40 and tracks = 3 in
  let f =
    Gen.Routing.channel (Sat.Rng.create 5) ~nets ~tracks
      ~extra_conflict_density:0.02
  in
  match Pipeline.Muc.minimize f with
  | Error `Sat -> Alcotest.fail "channel routable"
  | Ok r ->
    Alcotest.check Alcotest.bool
      (Printf.sprintf "muc (%d) much smaller than input (%d)"
         (Sat.Cnf.nclauses r.formula) (Sat.Cnf.nclauses f))
      true
      (Sat.Cnf.nclauses r.formula * 4 < Sat.Cnf.nclauses f);
    (* still unsat with the real solver *)
    match Solver.Cdcl.solve r.formula with
    | Solver.Cdcl.Unsat, _ -> ()
    | Solver.Cdcl.Sat _, _ -> Alcotest.fail "muc not unsat"

let test_muc_sat_input () =
  let f = Sat.Cnf.of_clauses 2 [ Sat.Clause.of_ints [ 1; 2 ] ] in
  match Pipeline.Muc.minimize f with
  | Error `Sat -> ()
  | Ok _ -> Alcotest.fail "sat input produced a core"

let test_muc_subset_of_input () =
  let f = Gen.Php.unsat ~holes:3 in
  match Pipeline.Muc.minimize f with
  | Error `Sat -> Alcotest.fail "unsat expected"
  | Ok r ->
    List.iteri
      (fun pos idx ->
        if
          Sat.Clause.to_ints (Sat.Cnf.clause r.formula pos)
          <> Sat.Clause.to_ints (Sat.Cnf.clause f idx)
        then Alcotest.fail "indices do not match formula")
      r.indices;
    Alcotest.check Alcotest.bool "solver calls counted" true
      (r.solver_calls > 0)

let suite =
  [
    ( "simplify",
      [
        Alcotest.test_case "unit chain" `Quick test_unit_chain_solved;
        Alcotest.test_case "unit conflict" `Quick test_unit_conflict;
        Alcotest.test_case "pure literals" `Quick test_pure_literals;
        Alcotest.test_case "subsumption" `Quick test_subsumption;
        Alcotest.test_case "tautology removal" `Quick test_tautology_removed;
        prop_simplify_equivalence;
      ] );
    ( "muc",
      [
        Alcotest.test_case "true minimality" `Slow test_muc_minimal;
        Alcotest.test_case "routing clique" `Slow test_muc_on_routing;
        Alcotest.test_case "sat input" `Quick test_muc_sat_input;
        Alcotest.test_case "subset of input" `Quick test_muc_subset_of_input;
      ] );
  ]
