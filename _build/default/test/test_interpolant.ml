(* Tests for Craig interpolation from checked proofs: the three defining
   properties are verified semantically against the brute-force oracle on
   randomized instances, plus hand-checkable cases. *)

module I = Pipeline.Interpolant

(* evaluate a CNF under a bit-mask assignment over vars 1..n *)
let cnf_sat_under f n mask =
  let a = Sat.Assignment.create n in
  for v = 1 to n do
    Sat.Assignment.set a v ((mask lsr (v - 1)) land 1 = 1)
  done;
  Sat.Model.satisfies a f

let valuation_of_mask n mask =
  List.init n (fun i -> (i + 1, (mask lsr i) land 1 = 1))

(* the three interpolant properties, checked by enumeration over all
   assignments of the combined variable space (n <= 16) *)
let verify_properties a b itp n =
  (* vars(I) ⊆ vars(A) ∩ vars(B): every circuit input is a shared var *)
  List.iter
    (fun name ->
      let v = int_of_string (String.sub name 1 (String.length name - 1)) in
      if not (List.mem v itp.I.shared_vars) then
        Alcotest.failf "interpolant mentions non-shared variable %d" v)
    (Circuit.Netlist.input_names itp.I.circuit);
  for mask = 0 to (1 lsl n) - 1 do
    let value = I.eval itp (valuation_of_mask n mask) in
    (* A ⊨ I *)
    if cnf_sat_under a n mask && not value then
      Alcotest.failf "A-model falsifies the interpolant (mask %d)" mask;
    (* I ∧ B unsat *)
    if cnf_sat_under b n mask && value then
      Alcotest.failf "B-model satisfies the interpolant (mask %d)" mask
  done

let test_hand_case () =
  (* A = (x1)(¬x1 ∨ x2), B = (¬x2): shared {x2}, I ≡ x2 *)
  let a =
    Sat.Cnf.of_clauses 2
      [ Sat.Clause.of_ints [ 1 ]; Sat.Clause.of_ints [ -1; 2 ] ]
  in
  let b = Sat.Cnf.of_clauses 2 [ Sat.Clause.of_ints [ -2 ] ] in
  match I.of_formulas a b with
  | Error _ -> Alcotest.fail "interpolation failed"
  | Ok itp ->
    Alcotest.check (Alcotest.list Alcotest.int) "shared vars" [ 2 ]
      itp.I.shared_vars;
    Alcotest.check Alcotest.bool "I(x2=1)" true (I.eval itp [ (2, true) ]);
    Alcotest.check Alcotest.bool "I(x2=0)" false (I.eval itp [ (2, false) ]);
    verify_properties a b itp 2

let test_php_partition () =
  (* A = at-least-one-hole clauses, B = conflict clauses *)
  let pigeons = 4 and holes = 3 in
  let f = Gen.Php.generate ~pigeons ~holes in
  let n = Sat.Cnf.nvars f in
  let a_count = pigeons in
  let a_indices = List.init a_count (fun i -> i) in
  let a = Sat.Cnf.restrict_to f a_indices in
  let b =
    Sat.Cnf.restrict_to f
      (List.init (Sat.Cnf.nclauses f - a_count) (fun i -> i + a_count))
  in
  let result, _, trace = Pipeline.Validate.solve_with_trace f in
  (match result with
   | Solver.Cdcl.Unsat -> ()
   | Solver.Cdcl.Sat _ -> Alcotest.fail "php unsat");
  match I.compute f ~a_indices (Trace.Reader.From_string trace) with
  | Error d -> Alcotest.failf "compute: %s" (Checker.Diagnostics.to_string d)
  | Ok itp ->
    Alcotest.check Alcotest.bool "nontrivial circuit" true (I.size itp > 0);
    verify_properties a b itp n

let test_empty_partition_sides () =
  (* A empty: the interpolant must be the constant true *)
  let f =
    Sat.Cnf.of_clauses 1 [ Sat.Clause.of_ints [ 1 ]; Sat.Clause.of_ints [ -1 ] ]
  in
  let result, _, trace = Pipeline.Validate.solve_with_trace f in
  (match result with
   | Solver.Cdcl.Unsat -> ()
   | Solver.Cdcl.Sat _ -> Alcotest.fail "unsat expected");
  (match I.compute f ~a_indices:[] (Trace.Reader.From_string trace) with
   | Error _ -> Alcotest.fail "compute failed"
   | Ok itp ->
     Alcotest.check Alcotest.bool "constant true" true (I.eval itp []));
  (* B empty: the interpolant must be the constant false *)
  match I.compute f ~a_indices:[ 0; 1 ] (Trace.Reader.From_string trace) with
  | Error _ -> Alcotest.fail "compute failed"
  | Ok itp ->
    Alcotest.check Alcotest.bool "constant false" false (I.eval itp [])

let test_sat_pair_reports_model () =
  let a = Sat.Cnf.of_clauses 2 [ Sat.Clause.of_ints [ 1 ] ] in
  let b = Sat.Cnf.of_clauses 2 [ Sat.Clause.of_ints [ 2 ] ] in
  match I.of_formulas a b with
  | Error (`Sat m) ->
    Alcotest.check Alcotest.bool "model satisfies A" true
      (Sat.Model.satisfies m a)
  | Error (`Check_failed _) -> Alcotest.fail "check failed"
  | Ok _ -> Alcotest.fail "sat pair interpolated"

(* randomized: split random unsat 3-SAT formulas at a random point *)
let prop_random_interpolants =
  Helpers.qtest ~count:40 "interpolant properties on random splits"
    QCheck.(small_int)
    (fun seed ->
      let rng = Sat.Rng.create (seed + 7919) in
      let nvars = 8 in
      let f =
        Gen.Random3sat.generate rng ~nvars ~nclauses:(45 + Sat.Rng.int rng 20)
      in
      match Solver.Enumerate.solve f with
      | Solver.Cdcl.Sat _ -> QCheck.assume_fail ()
      | Solver.Cdcl.Unsat -> (
        let cut = 1 + Sat.Rng.int rng (Sat.Cnf.nclauses f - 1) in
        let a_indices = List.init cut (fun i -> i) in
        let a = Sat.Cnf.restrict_to f a_indices in
        let b =
          Sat.Cnf.restrict_to f
            (List.init (Sat.Cnf.nclauses f - cut) (fun i -> i + cut))
        in
        let result, _, trace = Pipeline.Validate.solve_with_trace f in
        match result with
        | Solver.Cdcl.Sat _ -> false
        | Solver.Cdcl.Unsat -> (
          match I.compute f ~a_indices (Trace.Reader.From_string trace) with
          | Error _ -> false
          | Ok itp ->
            (try
               verify_properties a b itp nvars;
               true
             with Alcotest.Test_error -> false))))

let suite =
  [
    ( "interpolant",
      [
        Alcotest.test_case "hand case" `Quick test_hand_case;
        Alcotest.test_case "php partition" `Quick test_php_partition;
        Alcotest.test_case "degenerate partitions" `Quick
          test_empty_partition_sides;
        Alcotest.test_case "sat pair" `Quick test_sat_pair_reports_model;
        prop_random_interpolants;
      ] );
  ]
