(* Tests for CNF formulas and DIMACS parsing/printing. *)

let test_cnf_basics () =
  let f = Sat.Cnf.create 4 in
  let i0 = Sat.Cnf.add_clause f (Sat.Clause.of_ints [ 1; -2 ]) in
  let i1 = Sat.Cnf.add_clause f (Sat.Clause.of_ints [ 3 ]) in
  Alcotest.check Alcotest.int "first index" 0 i0;
  Alcotest.check Alcotest.int "second index" 1 i1;
  Alcotest.check Alcotest.int "nclauses" 2 (Sat.Cnf.nclauses f);
  Alcotest.check (Alcotest.list Alcotest.int) "clause content" [ 1; -2 ]
    (Sat.Clause.to_ints (Sat.Cnf.clause f 0))

let test_cnf_var_bounds () =
  let f = Sat.Cnf.create 2 in
  (try
     ignore (Sat.Cnf.add_clause f (Sat.Clause.of_ints [ 3 ]));
     Alcotest.fail "out-of-range variable accepted"
   with Invalid_argument _ -> ())

let test_distinct_vars () =
  (* header over-declares, like the paper's Table 3 footnote *)
  let f = Sat.Cnf.create 10 in
  ignore (Sat.Cnf.add_clause f (Sat.Clause.of_ints [ 1; -2 ]));
  ignore (Sat.Cnf.add_clause f (Sat.Clause.of_ints [ 2; 5 ]));
  Alcotest.check Alcotest.int "only occurring vars counted" 3
    (Sat.Cnf.num_distinct_vars f);
  Alcotest.check Alcotest.int "literal count" 4 (Sat.Cnf.num_literals f)

let test_restrict_to () =
  let f =
    Sat.Cnf.of_clauses 3
      [
        Sat.Clause.of_ints [ 1 ];
        Sat.Clause.of_ints [ 2 ];
        Sat.Clause.of_ints [ 3 ];
      ]
  in
  let g = Sat.Cnf.restrict_to f [ 2; 0; 2 ] in
  Alcotest.check Alcotest.int "dedup + sort" 2 (Sat.Cnf.nclauses g);
  Alcotest.check (Alcotest.list Alcotest.int) "kept clause order" [ 1 ]
    (Sat.Clause.to_ints (Sat.Cnf.clause g 0))

let test_dimacs_parse () =
  let f =
    Sat.Dimacs.parse_string
      "c a comment\np cnf 4 3\n1 -2 0\n2 3\n-4 0\n4 0\n"
  in
  Alcotest.check Alcotest.int "nvars" 4 (Sat.Cnf.nvars f);
  Alcotest.check Alcotest.int "nclauses" 3 (Sat.Cnf.nclauses f);
  (* the second clause spans two lines *)
  Alcotest.check (Alcotest.list Alcotest.int) "multi-line clause"
    [ 2; 3; -4 ]
    (Sat.Clause.to_ints (Sat.Cnf.clause f 1))

let expect_parse_error s name =
  try
    ignore (Sat.Dimacs.parse_string s);
    Alcotest.failf "%s: accepted" name
  with Sat.Dimacs.Parse_error _ -> ()

let test_dimacs_errors () =
  expect_parse_error "1 2 0\n" "missing header";
  expect_parse_error "p cnf 2 1\n1 2\n" "unterminated clause";
  expect_parse_error "p cnf 2 2\n1 0\n" "clause count mismatch";
  expect_parse_error "p cnf 1 1\n2 0\n" "variable out of range";
  expect_parse_error "p cnf x 1\n1 0\n" "bad header token"

let test_dimacs_roundtrip () =
  let rng = Sat.Rng.create 77 in
  for _ = 1 to 20 do
    let f = Helpers.random_messy_cnf rng ~nvars:12 ~nclauses:30 in
    let g = Sat.Dimacs.parse_string (Sat.Dimacs.to_string ~comment:"rt" f) in
    Alcotest.check Alcotest.int "nvars preserved" (Sat.Cnf.nvars f)
      (Sat.Cnf.nvars g);
    Alcotest.check Alcotest.int "nclauses preserved" (Sat.Cnf.nclauses f)
      (Sat.Cnf.nclauses g);
    for i = 0 to Sat.Cnf.nclauses f - 1 do
      if
        Sat.Clause.to_ints (Sat.Cnf.clause f i)
        <> Sat.Clause.to_ints (Sat.Cnf.clause g i)
      then Alcotest.failf "clause %d changed in roundtrip" i
    done
  done

let test_dimacs_file_io () =
  let f = Gen.Php.unsat ~holes:3 in
  let path = Filename.temp_file "dimacs_test" ".cnf" in
  Sat.Dimacs.write_file ~comment:"php3" path f;
  let g = Sat.Dimacs.parse_file path in
  Sys.remove path;
  Alcotest.check Alcotest.int "file roundtrip clause count"
    (Sat.Cnf.nclauses f) (Sat.Cnf.nclauses g)

let suite =
  [
    ( "cnf",
      [
        Alcotest.test_case "basics" `Quick test_cnf_basics;
        Alcotest.test_case "variable bounds" `Quick test_cnf_var_bounds;
        Alcotest.test_case "distinct vars" `Quick test_distinct_vars;
        Alcotest.test_case "restrict_to" `Quick test_restrict_to;
      ] );
    ( "dimacs",
      [
        Alcotest.test_case "parse" `Quick test_dimacs_parse;
        Alcotest.test_case "errors" `Quick test_dimacs_errors;
        Alcotest.test_case "roundtrip" `Quick test_dimacs_roundtrip;
        Alcotest.test_case "file io" `Quick test_dimacs_file_io;
      ] );
  ]
