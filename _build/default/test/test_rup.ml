(* Tests for the RUP checker and the trace→DRUP conversion. *)

let test_is_rup_basics () =
  let f =
    Sat.Cnf.of_clauses 3
      [ Sat.Clause.of_ints [ 1 ]; Sat.Clause.of_ints [ -1; 2 ] ]
  in
  Alcotest.check Alcotest.bool "consequence is RUP" true
    (Checker.Rup.is_rup f (Sat.Clause.of_ints [ 2 ]));
  Alcotest.check Alcotest.bool "superset of consequence is RUP" true
    (Checker.Rup.is_rup f (Sat.Clause.of_ints [ 2; 3 ]));
  Alcotest.check Alcotest.bool "non-consequence is not RUP" false
    (Checker.Rup.is_rup f (Sat.Clause.of_ints [ -2 ]));
  Alcotest.check Alcotest.bool "unconstrained literal is not RUP" false
    (Checker.Rup.is_rup f (Sat.Clause.of_ints [ 3 ]))

let test_tautology_rup () =
  let f = Sat.Cnf.of_clauses 3 [ Sat.Clause.of_ints [ 1 ] ] in
  Alcotest.check Alcotest.bool "tautologies are RUP" true
    (Checker.Rup.is_rup f (Sat.Clause.of_ints [ 3; -3 ]))

let test_check_hand_derivation () =
  (* F = (1 2)(1 ¬2)(¬1 2)(¬1 ¬2); derive (1), then [] *)
  let f =
    Sat.Cnf.of_clauses 2
      [
        Sat.Clause.of_ints [ 1; 2 ];
        Sat.Clause.of_ints [ 1; -2 ];
        Sat.Clause.of_ints [ -1; 2 ];
        Sat.Clause.of_ints [ -1; -2 ];
      ]
  in
  match Checker.Rup.check f [ Sat.Clause.of_ints [ 1 ]; [||] ] with
  | Ok stats ->
    Alcotest.check Alcotest.int "both steps checked" 2 stats.clauses_checked
  | Error e -> Alcotest.failf "rejected: %s" (Format.asprintf "%a" Checker.Rup.pp_failure e)

let test_check_rejects_non_rup () =
  let f =
    Sat.Cnf.of_clauses 3
      [ Sat.Clause.of_ints [ 1; 2 ]; Sat.Clause.of_ints [ -1; 2 ] ]
  in
  match Checker.Rup.check f [ Sat.Clause.of_ints [ 3 ]; [||] ] with
  | Error (Checker.Rup.Not_rup { index = 0; _ }) -> ()
  | Error e ->
    Alcotest.failf "wrong failure: %s"
      (Format.asprintf "%a" Checker.Rup.pp_failure e)
  | Ok _ -> Alcotest.fail "non-RUP step accepted"

let test_check_requires_empty () =
  let f =
    Sat.Cnf.of_clauses 2
      [ Sat.Clause.of_ints [ 1 ]; Sat.Clause.of_ints [ -1; 2 ] ]
  in
  match Checker.Rup.check f [ Sat.Clause.of_ints [ 2 ] ] with
  | Error Checker.Rup.No_empty_clause -> ()
  | Error _ -> Alcotest.fail "wrong failure"
  | Ok _ -> Alcotest.fail "incomplete derivation accepted"

let drup_of fam_f =
  let result, _, trace = Pipeline.Validate.solve_with_trace fam_f in
  (match result with
   | Solver.Cdcl.Unsat -> ()
   | Solver.Cdcl.Sat _ -> Alcotest.fail "unsat expected");
  match Pipeline.Drup.of_trace fam_f (Trace.Reader.From_string trace) with
  | Ok d -> d
  | Error d -> Alcotest.failf "conversion failed: %s" (Checker.Diagnostics.to_string d)

let test_exported_derivations_check () =
  List.iter
    (fun (fam : Gen.Families.family) ->
      let f = fam.generate () in
      let derivation = drup_of f in
      match Checker.Rup.check f derivation with
      | Ok stats ->
        Alcotest.check Alcotest.bool (fam.name ^ ": steps checked") true
          (stats.clauses_checked >= 1)
      | Error e ->
        Alcotest.failf "%s: DRUP rejected: %s" fam.name
          (Format.asprintf "%a" Checker.Rup.pp_failure e))
    (Gen.Families.quick ())

let test_exported_php () =
  let f = Gen.Php.unsat ~holes:5 in
  let derivation = drup_of f in
  (* last element is the empty clause *)
  (match List.rev derivation with
   | last :: _ -> Alcotest.check Alcotest.int "ends empty" 0 (Sat.Clause.size last)
   | [] -> Alcotest.fail "empty derivation");
  match Checker.Rup.check f derivation with
  | Ok _ -> ()
  | Error e ->
    Alcotest.failf "php DRUP rejected: %s"
      (Format.asprintf "%a" Checker.Rup.pp_failure e)

let test_minimized_trace_converts () =
  (* clause minimization appends extra resolve sources; the conversion
     and RUP check must still go through *)
  let f = Gen.Php.unsat ~holes:5 in
  let config =
    { Solver.Cdcl.default_config with enable_minimization = true }
  in
  let result, _, trace = Pipeline.Validate.solve_with_trace ~config f in
  (match result with
   | Solver.Cdcl.Unsat -> ()
   | Solver.Cdcl.Sat _ -> Alcotest.fail "php unsat");
  match Pipeline.Drup.of_trace f (Trace.Reader.From_string trace) with
  | Error d -> Alcotest.failf "conversion: %s" (Checker.Diagnostics.to_string d)
  | Ok derivation -> (
    match Checker.Rup.check f derivation with
    | Ok _ -> ()
    | Error e ->
      Alcotest.failf "minimized DRUP rejected: %s"
        (Format.asprintf "%a" Checker.Rup.pp_failure e))

let test_corrupted_derivation_rejected () =
  let f = Gen.Php.unsat ~holes:4 in
  let derivation = drup_of f in
  (* replace the first derived clause with an unjustified one *)
  let mutated =
    match derivation with
    | _ :: rest -> Sat.Clause.of_ints [ 1 ] :: rest
    | [] -> []
  in
  match Checker.Rup.check f mutated with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupted DRUP accepted"

let test_drup_text_roundtrip () =
  let f = Gen.Php.unsat ~holes:4 in
  let derivation = drup_of f in
  let text = Pipeline.Drup.to_string derivation in
  let back = Pipeline.Drup.parse text in
  Alcotest.check Alcotest.int "clause count survives" (List.length derivation)
    (List.length back);
  List.iter2
    (fun a b ->
      if Sat.Clause.to_ints a <> Sat.Clause.to_ints b then
        Alcotest.fail "clause changed in roundtrip")
    derivation back;
  (* the parsed derivation still checks *)
  match Checker.Rup.check f back with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "roundtripped DRUP rejected"

let suite =
  [
    ( "rup",
      [
        Alcotest.test_case "is_rup basics" `Quick test_is_rup_basics;
        Alcotest.test_case "tautology" `Quick test_tautology_rup;
        Alcotest.test_case "hand derivation" `Quick test_check_hand_derivation;
        Alcotest.test_case "rejects non-rup" `Quick test_check_rejects_non_rup;
        Alcotest.test_case "requires empty clause" `Quick
          test_check_requires_empty;
        Alcotest.test_case "exported families check" `Slow
          test_exported_derivations_check;
        Alcotest.test_case "exported php checks" `Quick test_exported_php;
        Alcotest.test_case "minimized trace converts" `Quick
          test_minimized_trace_converts;
        Alcotest.test_case "corrupted rejected" `Quick
          test_corrupted_derivation_rejected;
        Alcotest.test_case "text roundtrip" `Quick test_drup_text_roundtrip;
      ] );
  ]
