(* Tests for the proof-statistics analyzer. *)

let stats_of f =
  let result, _, trace = Pipeline.Validate.solve_with_trace f in
  (match result with
   | Solver.Cdcl.Unsat -> ()
   | Solver.Cdcl.Sat _ -> Alcotest.fail "unsat expected");
  match Checker.Proof_stats.analyze f (Trace.Reader.From_string trace) with
  | Ok s -> s
  | Error d -> Alcotest.failf "analyze: %s" (Checker.Diagnostics.to_string d)

let test_php_shape () =
  let s = stats_of (Gen.Php.unsat ~holes:5) in
  Alcotest.check Alcotest.bool "learned recorded" true (s.learned_total > 0);
  Alcotest.check Alcotest.bool "needed <= total" true
    (s.learned_needed <= s.learned_total);
  Alcotest.check Alcotest.bool "depth positive" true (s.dag_depth >= 1);
  Alcotest.check Alcotest.bool "widths sane" true
    (s.max_clause_width >= 1
     && s.mean_clause_width > 0.0
     && s.mean_clause_width <= float_of_int s.max_clause_width);
  Alcotest.check Alcotest.bool "chain positive" true
    (s.final_chain_length >= 1)

let test_agrees_with_checkers () =
  let f = Gen.Php.unsat ~holes:4 in
  let result, _, trace = Pipeline.Validate.solve_with_trace f in
  (match result with
   | Solver.Cdcl.Unsat -> ()
   | Solver.Cdcl.Sat _ -> Alcotest.fail "unsat expected");
  let src = Trace.Reader.From_string trace in
  let s =
    match Checker.Proof_stats.analyze f src with
    | Ok s -> s
    | Error _ -> Alcotest.fail "analyze failed"
  in
  (match Checker.Bf.check f src with
   | Ok r ->
     Alcotest.check Alcotest.int "total matches BF" r.total_learned
       s.learned_total;
     Alcotest.check Alcotest.int "steps match BF" r.resolution_steps
       s.resolution_steps
   | Error _ -> Alcotest.fail "bf failed");
  match Checker.Hybrid.check f src with
  | Ok r ->
    (* hybrid builds exactly the needed learned clauses *)
    Alcotest.check Alcotest.int "needed matches hybrid" r.clauses_built
      s.learned_needed
  | Error _ -> Alcotest.fail "hybrid failed"

let test_no_learning_case () =
  (* a formula decided by propagation: zero learned clauses *)
  let f =
    Sat.Cnf.of_clauses 2
      [ Sat.Clause.of_ints [ 1 ]; Sat.Clause.of_ints [ -1 ] ]
  in
  let s = stats_of f in
  Alcotest.check Alcotest.int "no learned clauses" 0 s.learned_total;
  Alcotest.check Alcotest.int "depth zero" 0 s.dag_depth;
  Alcotest.check Alcotest.bool "chain ran" true (s.final_chain_length >= 1)

let test_rejects_bad_trace () =
  let f = Gen.Php.unsat ~holes:4 in
  let _, events = Helpers.unsat_with_events () in
  let mutated =
    List.filter (function Trace.Event.Learned _ -> false | _ -> true) events
  in
  match Checker.Proof_stats.analyze f (Helpers.events_to_source mutated) with
  | Ok _ -> Alcotest.fail "bad trace analyzed"
  | Error _ -> ()

let suite =
  [
    ( "proof-stats",
      [
        Alcotest.test_case "php shape" `Quick test_php_shape;
        Alcotest.test_case "agrees with checkers" `Quick
          test_agrees_with_checkers;
        Alcotest.test_case "no learning" `Quick test_no_learning_case;
        Alcotest.test_case "rejects bad trace" `Quick test_rejects_bad_trace;
      ] );
  ]
