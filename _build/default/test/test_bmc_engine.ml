(* Tests for bounded and interpolation-based unbounded model checking. *)

module B = Pipeline.Bmc_engine
module T = Circuit.Transition

let test_bmc_safe_ring () =
  match B.bmc ~max_depth:6 (T.token_ring ~nodes:5) with
  | B.Safe_up_to 6 -> ()
  | B.Safe_up_to d -> Alcotest.failf "wrong bound %d" d
  | B.Cex d -> Alcotest.failf "false counterexample at %d" d
  | B.Check_failed x -> Alcotest.failf "check: %s" (Checker.Diagnostics.to_string x)

let test_bmc_buggy_ring () =
  match B.bmc ~max_depth:6 (T.token_ring_buggy ~nodes:5) with
  | B.Cex 1 -> ()  (* one glitched step duplicates the token *)
  | B.Cex d -> Alcotest.failf "expected depth 1, got %d" d
  | B.Safe_up_to _ -> Alcotest.fail "missed the bug"
  | B.Check_failed x -> Alcotest.failf "check: %s" (Checker.Diagnostics.to_string x)

let test_bmc_counter_minimal_depth () =
  (* target 5 needs exactly 5 increments *)
  match
    B.bmc ~max_depth:8 (T.saturating_counter ~width:4 ~limit:9 ~target:5)
  with
  | B.Cex 5 -> ()
  | B.Cex d -> Alcotest.failf "expected minimal depth 5, got %d" d
  | B.Safe_up_to _ -> Alcotest.fail "missed reachable target"
  | B.Check_failed x -> Alcotest.failf "check: %s" (Checker.Diagnostics.to_string x)

let test_bmc_counter_unreachable () =
  (* saturation at 5 keeps the counter below target 9 forever *)
  match
    B.bmc ~max_depth:10 (T.saturating_counter ~width:4 ~limit:5 ~target:9)
  with
  | B.Safe_up_to 10 -> ()
  | B.Safe_up_to d -> Alcotest.failf "wrong bound %d" d
  | B.Cex d -> Alcotest.failf "false counterexample at %d" d
  | B.Check_failed x -> Alcotest.failf "check: %s" (Checker.Diagnostics.to_string x)

let test_bmc_bad_init () =
  (* target 0 is the initial counter value: violated at depth 0 *)
  match
    B.bmc ~max_depth:3 (T.saturating_counter ~width:3 ~limit:4 ~target:0)
  with
  | B.Cex 0 -> ()
  | B.Cex d -> Alcotest.failf "expected depth 0, got %d" d
  | B.Safe_up_to _ -> Alcotest.fail "missed initial violation"
  | B.Check_failed x -> Alcotest.failf "check: %s" (Checker.Diagnostics.to_string x)

let expect_safe name r =
  match r with
  | B.Proved_safe { iterations; reachable_nodes } ->
    Alcotest.check Alcotest.bool (name ^ ": sane iteration count") true
      (iterations >= 1);
    Alcotest.check Alcotest.bool (name ^ ": nontrivial invariant") true
      (reachable_nodes >= 1)
  | B.Counterexample { depth } ->
    Alcotest.failf "%s: false counterexample at %d" name depth
  | B.Inconclusive _ -> Alcotest.failf "%s: inconclusive" name
  | B.Mc_check_failed d ->
    Alcotest.failf "%s: %s" name (Checker.Diagnostics.to_string d)

let expect_cex name ~max_depth r =
  match r with
  | B.Counterexample { depth } ->
    Alcotest.check Alcotest.bool (name ^ ": bounded depth") true
      (depth <= max_depth)
  | B.Proved_safe _ -> Alcotest.failf "%s: proved an unsafe system safe" name
  | B.Inconclusive _ -> Alcotest.failf "%s: inconclusive" name
  | B.Mc_check_failed d ->
    Alcotest.failf "%s: %s" name (Checker.Diagnostics.to_string d)

let test_mc_ring_unbounded () =
  expect_safe "ring" (B.interpolation_mc (T.token_ring ~nodes:5))

let test_mc_ring_buggy () =
  expect_cex "buggy ring" ~max_depth:3
    (B.interpolation_mc (T.token_ring_buggy ~nodes:4))

let test_mc_counter_safe_unbounded () =
  (* BMC can never close this property (the counter runs forever);
     interpolation proves it for every depth *)
  expect_safe "counter"
    (B.interpolation_mc (T.saturating_counter ~width:4 ~limit:5 ~target:9))

let test_mc_counter_unsafe () =
  expect_cex "counter" ~max_depth:6
    (B.interpolation_mc (T.saturating_counter ~width:4 ~limit:9 ~target:5))

let test_mc_mutex () =
  expect_safe "mutex" (B.interpolation_mc (T.mutex ()))

let test_mc_bad_init () =
  match
    B.interpolation_mc (T.saturating_counter ~width:3 ~limit:4 ~target:0)
  with
  | B.Counterexample { depth = 0 } -> ()
  | B.Counterexample { depth } -> Alcotest.failf "expected 0, got %d" depth
  | B.Proved_safe _ | B.Inconclusive _ | B.Mc_check_failed _ ->
    Alcotest.fail "missed initial violation"

let test_mc_agrees_with_bmc () =
  (* on unsafe systems both must find a violation; the MC depth bound is
     never smaller than BMC's minimal depth *)
  List.iter
    (fun (name, ts, max_depth) ->
      match B.bmc ~max_depth ts, B.interpolation_mc ts with
      | B.Cex b, B.Counterexample { depth = m } ->
        Alcotest.check Alcotest.bool (name ^ ": mc bound >= bmc depth") true
          (m >= b)
      | _, _ -> Alcotest.failf "%s: methods disagree" name)
    [
      ("buggy ring", T.token_ring_buggy ~nodes:4, 4);
      ("counter t3", T.saturating_counter ~width:3 ~limit:6 ~target:3, 6);
    ]

let suite =
  [
    ( "bmc",
      [
        Alcotest.test_case "safe ring" `Quick test_bmc_safe_ring;
        Alcotest.test_case "buggy ring" `Quick test_bmc_buggy_ring;
        Alcotest.test_case "minimal cex depth" `Quick
          test_bmc_counter_minimal_depth;
        Alcotest.test_case "unreachable target" `Quick
          test_bmc_counter_unreachable;
        Alcotest.test_case "violated initially" `Quick test_bmc_bad_init;
      ] );
    ( "interpolation-mc",
      [
        Alcotest.test_case "ring proved safe" `Quick test_mc_ring_unbounded;
        Alcotest.test_case "buggy ring cex" `Quick test_mc_ring_buggy;
        Alcotest.test_case "counter proved safe" `Quick
          test_mc_counter_safe_unbounded;
        Alcotest.test_case "counter cex" `Quick test_mc_counter_unsafe;
        Alcotest.test_case "mutex proved safe" `Quick test_mc_mutex;
        Alcotest.test_case "violated initially" `Quick test_mc_bad_init;
        Alcotest.test_case "agrees with bmc" `Slow test_mc_agrees_with_bmc;
      ] );
  ]
