  $ R=../bin/rescheck.exe
  $ $R gen php_8 -o php8.cnf
  $ head -2 php8.cnf
  $ $R solve php8.cnf --trace php8.trc > solve.out; echo "exit $?"
  $ grep -o "s UNSATISFIABLE" solve.out
  $ $R check php8.cnf php8.trc -s df | grep "^s "
  $ $R check php8.cnf php8.trc -s bf | grep "^s "
  $ $R check php8.cnf php8.trc -s hybrid | grep "^s "
  $ head -c 2000 php8.trc > broken.trc
  $ $R check php8.cnf broken.trc > check.out; echo "exit $?"
  $ grep "^s " check.out
  $ $R check php8.cnf php8.trc --mem-limit 1000 > memout.out; echo "exit $?"
  $ grep -o "s MEMORY OUT" memout.out
  $ $R validate php8.cnf | grep "^s "
  $ $R core php8.cnf | grep "fixed point"
  $ $R trim php8.cnf php8.trc -o trimmed.trc > /dev/null; echo "exit $?"
  $ $R check php8.cnf trimmed.trc -s bf | grep "^s "
  $ $R drup php8.cnf php8.trc -o php8.drup | grep -c "DRUP written"
  $ printf 'p cnf 2 2\n1 2 0\n-1 2 0\n' > sat.cnf
  $ $R validate sat.cnf > sat.out; echo "exit $?"
  $ grep "^s " sat.out
  $ $R mc ring:5 --unbounded | grep -o "s SAFE"
  $ $R mc ring-buggy:4 -k 4 > mc.out; echo "exit $?"
  $ grep "^s " mc.out
  $ printf 'p cnf 3 3\n1 0\n-1 2 0\n-2 3 0\n' > units.cnf
  $ $R simplify units.cnf | grep "^s "
