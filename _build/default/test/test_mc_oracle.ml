(* Differential testing of the model-checking stack: random small
   transition systems are checked against an explicit-state BFS oracle
   (driven by the circuit simulator).  BMC with a bound covering the full
   state space must agree exactly; the interpolation-based checker's
   verdicts must never contradict the oracle. *)

module N = Circuit.Netlist
module T = Circuit.Transition
module B = Pipeline.Bmc_engine

(* a random combinational expression over the given operand nodes *)
let rec random_expr rng c operands depth =
  if depth = 0 || Sat.Rng.int rng 3 = 0 then Sat.Rng.pick rng operands
  else begin
    let a = random_expr rng c operands (depth - 1) in
    let b = random_expr rng c operands (depth - 1) in
    match Sat.Rng.int rng 4 with
    | 0 -> N.and_ c a b
    | 1 -> N.or_ c a b
    | 2 -> N.xor_ c a b
    | _ -> N.not_ c a
  end

(* A random transition system: [width] state bits, [n_inputs] fresh
   primary inputs per frame, next-state functions and the bad predicate
   drawn from a seeded stream.  The structural choices are captured as a
   recipe (list of ints) so that [step] can deterministically rebuild the
   same functions inside any netlist. *)
let random_ts seed ~width ~n_inputs =
  let recipe_rng () = Sat.Rng.create seed in
  let build c ~frame ~state =
    let rng = recipe_rng () in
    let inputs =
      List.init n_inputs (fun i ->
          N.input c (Printf.sprintf "in%d_%d" i frame))
    in
    let operands = Array.of_list (state @ inputs) in
    List.init width (fun _ -> random_expr rng c operands 3)
  in
  let bad c state =
    (* derive the bad predicate from an independent stream *)
    let rng = Sat.Rng.create (seed + 1) in
    let operands = Array.of_list state in
    random_expr rng c operands 2
  in
  let init =
    let rng = Sat.Rng.create (seed + 2) in
    List.init width (fun _ -> Sat.Rng.bool rng)
  in
  {
    T.name = Printf.sprintf "random_%d" seed;
    state_width = width;
    init;
    step = (fun c ~frame ~state -> build c ~frame ~state);
    bad;
  }

(* explicit-state oracle: BFS over bitmask states, trying every input
   valuation; returns the minimal depth at which [bad] holds, if any *)
let oracle_min_bad_depth (ts : T.t) ~n_inputs =
  let w = ts.T.state_width in
  let eval_bad mask =
    let c = N.create () in
    let state =
      List.init w (fun i -> N.const c ((mask lsr i) land 1 = 1))
    in
    match N.gate c (ts.T.bad c state) with
    | N.G_const b -> b
    | N.G_input _ | N.G_not _ | N.G_and _ | N.G_or _ | N.G_xor _ ->
      (* bad over constants always folds *)
      assert false
  in
  let next_states mask =
    List.init (1 lsl n_inputs) (fun ival ->
        let c = N.create () in
        let state =
          List.init w (fun i -> N.input c (Printf.sprintf "s%d" i))
        in
        let next = ts.T.step c ~frame:1 ~state in
        let inputs =
          List.init w (fun i ->
              (Printf.sprintf "s%d" i, (mask lsr i) land 1 = 1))
          @ List.init n_inputs (fun i ->
                (Printf.sprintf "in%d_1" i, (ival lsr i) land 1 = 1))
        in
        (* the step may not have declared every input (constant folding);
           keep only declared ones *)
        let declared = N.input_names c in
        let inputs = List.filter (fun (n, _) -> List.mem n declared) inputs in
        let bits = Circuit.Sim.eval c ~inputs next in
        List.fold_left
          (fun acc (i, b) -> if b then acc lor (1 lsl i) else acc)
          0
          (List.mapi (fun i b -> (i, b)) bits))
  in
  let init_mask =
    List.fold_left
      (fun acc (i, b) -> if b then acc lor (1 lsl i) else acc)
      0
      (List.mapi (fun i b -> (i, b)) ts.T.init)
  in
  let visited = Hashtbl.create 64 in
  let frontier = ref [ init_mask ] in
  Hashtbl.replace visited init_mask ();
  let depth = ref 0 in
  let found = ref None in
  if eval_bad init_mask then found := Some 0;
  while !found = None && !frontier <> [] do
    incr depth;
    let next_frontier = ref [] in
    List.iter
      (fun mask ->
        List.iter
          (fun m' ->
            if not (Hashtbl.mem visited m') then begin
              Hashtbl.replace visited m' ();
              if !found = None && eval_bad m' then found := Some !depth;
              next_frontier := m' :: !next_frontier
            end)
          (next_states mask))
      !frontier;
    frontier := !next_frontier
  done;
  !found

let test_random_systems () =
  let n_checked = ref 0 in
  for seed = 1 to 30 do
    let width = 2 + (seed mod 3) in
    let n_inputs = 1 + (seed mod 2) in
    let ts = random_ts (seed * 1000) ~width ~n_inputs in
    let oracle = oracle_min_bad_depth ts ~n_inputs in
    incr n_checked;
    (* BMC with a bound covering the whole state space is complete *)
    let bound = 1 lsl width in
    (match B.bmc ~max_depth:bound ts, oracle with
     | B.Cex d, Some d' ->
       if d <> d' then
         Alcotest.failf "seed %d: bmc depth %d, oracle %d" seed d d'
     | B.Safe_up_to _, None -> ()
     | B.Cex d, None ->
       Alcotest.failf "seed %d: bmc found spurious cex at %d" seed d
     | B.Safe_up_to _, Some d ->
       Alcotest.failf "seed %d: bmc missed a violation at depth %d" seed d
     | B.Check_failed x, _ ->
       Alcotest.failf "seed %d: proof rejected: %s" seed
         (Checker.Diagnostics.to_string x));
    (* the unbounded checker must never contradict the oracle *)
    match B.interpolation_mc ~max_iterations:40 ts, oracle with
    | B.Proved_safe _, Some d ->
      Alcotest.failf "seed %d: proved safe but oracle violates at %d" seed d
    | B.Counterexample _, None ->
      Alcotest.failf "seed %d: counterexample on a safe system" seed
    | B.Counterexample { depth }, Some d ->
      if depth < d then
        Alcotest.failf "seed %d: mc bound %d below oracle minimum %d" seed
          depth d
    | B.Proved_safe _, None -> ()
    | B.Inconclusive _, _ -> () (* allowed: iteration budget, not wrongness *)
    | B.Mc_check_failed x, _ ->
      Alcotest.failf "seed %d: proof rejected: %s" seed
        (Checker.Diagnostics.to_string x)
  done;
  Alcotest.check Alcotest.int "all seeds exercised" 30 !n_checked

let suite =
  [
    ( "mc-oracle",
      [
        Alcotest.test_case "random systems vs explicit BFS" `Slow
          test_random_systems;
      ] );
  ]
