(* Tests for the hybrid checker (§5 future work): correctness on genuine
   traces, the best-of-both resource profile, and strictness equal to the
   breadth-first pass. *)

module D = Checker.Diagnostics

let check_all f trace =
  let src = Trace.Reader.From_string trace in
  let m_df = Harness.Meter.create () in
  let m_bf = Harness.Meter.create () in
  let m_hy = Harness.Meter.create () in
  match
    ( Checker.Df.check ~meter:m_df f src,
      Checker.Bf.check ~meter:m_bf f src,
      Checker.Hybrid.check ~meter:m_hy f src )
  with
  | Ok df, Ok bf, Ok hy -> (df, bf, hy, m_df, m_bf, m_hy)
  | Error d, _, _ -> Alcotest.failf "df: %s" (D.to_string d)
  | _, Error d, _ -> Alcotest.failf "bf: %s" (D.to_string d)
  | _, _, Error d -> Alcotest.failf "hybrid: %s" (D.to_string d)

let test_families_accepted () =
  List.iter
    (fun (fam : Gen.Families.family) ->
      let f = fam.generate () in
      let result, _, trace = Pipeline.Validate.solve_with_trace f in
      match result with
      | Solver.Cdcl.Sat _ -> Alcotest.failf "%s unexpectedly sat" fam.name
      | Solver.Cdcl.Unsat ->
        let df, bf, hy, _, _, _ = check_all f trace in
        Alcotest.check Alcotest.int
          (fam.name ^ ": same learned total")
          df.total_learned hy.total_learned;
        (* hybrid builds at least DF's needed set but never more than BF's
           everything *)
        Alcotest.check Alcotest.bool
          (fam.name ^ ": df <= hybrid <= bf built")
          true
          (df.clauses_built <= hy.clauses_built
           && hy.clauses_built <= bf.clauses_built))
    (Gen.Families.quick ())

let test_resource_profile () =
  let f = Gen.Php.unsat ~holes:6 in
  let result, _, trace = Pipeline.Validate.solve_with_trace f in
  (match result with
   | Solver.Cdcl.Unsat -> ()
   | Solver.Cdcl.Sat _ -> Alcotest.fail "php unsat");
  let df, bf, hy, m_df, _m_bf, m_hy = check_all f trace in
  let df_peak = Harness.Meter.peak_words m_df in
  let hy_peak = Harness.Meter.peak_words m_hy in
  Alcotest.check Alcotest.bool
    (Printf.sprintf "hybrid peak (%d) well below df peak (%d)" hy_peak
       df_peak)
    true
    (hy_peak * 2 < df_peak);
  Alcotest.check Alcotest.bool "builds like df, not like bf" true
    (hy.clauses_built < bf.clauses_built
     && hy.clauses_built >= df.clauses_built)

let test_fits_df_busting_budget () =
  let f = Gen.Php.unsat ~holes:6 in
  let _, _, trace = Pipeline.Validate.solve_with_trace f in
  let src = Trace.Reader.From_string trace in
  let m_df = Harness.Meter.create () in
  (match Checker.Df.check ~meter:m_df f src with
   | Ok _ -> ()
   | Error d -> Alcotest.failf "df: %s" (D.to_string d));
  let budget = Harness.Meter.peak_words m_df / 2 in
  let m = Harness.Meter.create ~limit_words:budget () in
  match Checker.Hybrid.check ~meter:m f src with
  | Ok _ -> ()
  | Error d -> Alcotest.failf "hybrid under budget: %s" (D.to_string d)

let test_core_agrees_with_df_superset () =
  (* the hybrid core contains DF's core: both are valid unsat cores *)
  let f = Gen.Php.unsat ~holes:4 in
  let _, _, trace = Pipeline.Validate.solve_with_trace f in
  let df, _, hy, _, _, _ = check_all f trace in
  List.iter
    (fun id ->
      if not (List.mem id hy.core_original_ids) then
        Alcotest.failf "df core id %d missing from hybrid core" id)
    df.core_original_ids;
  (* and the hybrid core must itself be unsat *)
  let g =
    Sat.Cnf.restrict_to f (List.map (fun id -> id - 1) hy.core_original_ids)
  in
  match Solver.Enumerate.solve g with
  | Solver.Cdcl.Unsat -> ()
  | Solver.Cdcl.Sat _ -> Alcotest.fail "hybrid core satisfiable"

let test_mutations_rejected () =
  let f, events = Helpers.unsat_with_events () in
  let check events' =
    let w = Trace.Writer.create Trace.Writer.Ascii in
    List.iter (Trace.Writer.emit w) events';
    Checker.Hybrid.check f (Trace.Reader.From_string (Trace.Writer.contents w))
  in
  (* forward reference: swap the first two CL records *)
  let rec swap_first_two acc = function
    | Trace.Event.Learned a :: Trace.Event.Learned b :: rest ->
      List.rev_append acc
        (Trace.Event.Learned b :: Trace.Event.Learned a :: rest)
    | e :: rest -> swap_first_two (e :: acc) rest
    | [] -> List.rev acc
  in
  (* only a forward reference if b depends on a; php learned clauses
     usually chain, so check for any rejection *)
  (match check (swap_first_two [] events) with
   | Ok _ -> () (* independent clauses: swap can be harmless *)
   | Error _ -> ());
  (* flipped values must always be rejected *)
  let flipped =
    List.map
      (function
        | Trace.Event.Level0 v -> Trace.Event.Level0 { v with value = not v.value }
        | e -> e)
      events
  in
  (match check flipped with
   | Ok _ -> Alcotest.fail "hybrid accepted flipped values"
   | Error _ -> ());
  (* dropped CL records must be rejected *)
  let dropped =
    List.filter (function Trace.Event.Learned _ -> false | _ -> true) events
  in
  match check dropped with
  | Ok _ -> Alcotest.fail "hybrid accepted dropped CL records"
  | Error _ -> ()

let test_validate_strategy () =
  let f = Gen.Php.unsat ~holes:4 in
  let o = Pipeline.Validate.run ~strategy:Pipeline.Validate.Hybrid f in
  match o.verdict with
  | Pipeline.Validate.Unsat_verified _ -> ()
  | Pipeline.Validate.Sat_verified _ | Pipeline.Validate.Sat_model_wrong _
  | Pipeline.Validate.Unsat_check_failed _ ->
    Alcotest.fail "hybrid validate failed"

let suite =
  [
    ( "hybrid",
      [
        Alcotest.test_case "families accepted" `Slow test_families_accepted;
        Alcotest.test_case "resource profile" `Quick test_resource_profile;
        Alcotest.test_case "fits DF-busting budget" `Quick
          test_fits_df_busting_budget;
        Alcotest.test_case "core superset + unsat" `Quick
          test_core_agrees_with_df_superset;
        Alcotest.test_case "mutations rejected" `Quick test_mutations_rejected;
        Alcotest.test_case "validate strategy" `Quick test_validate_strategy;
      ] );
  ]
