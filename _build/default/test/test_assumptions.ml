(* Tests for assumption-based and incremental solving. *)

module C = Solver.Cdcl

let inc_of f = C.Incremental.create f

let with_units f lits =
  let g = Sat.Cnf.copy f in
  List.iter (fun l -> ignore (Sat.Cnf.add_clause g [| l |])) lits;
  g

let test_assumption_forces_unsat () =
  (* formula says ¬x1; assuming x1 must fail with exactly that
     assumption *)
  let f = Sat.Cnf.of_clauses 2 [ Sat.Clause.of_ints [ -1 ] ] in
  let s = inc_of f in
  match C.Incremental.solve ~assumptions:[ Sat.Lit.pos 1 ] s with
  | C.A_unsat_assumptions failed ->
    Alcotest.check (Alcotest.list Alcotest.int) "failed = [x1]"
      [ Sat.Lit.pos 1 ] failed
  | C.A_sat _ | C.A_unsat -> Alcotest.fail "expected failed assumptions"

let test_contradictory_assumptions () =
  let f = Sat.Cnf.of_clauses 2 [ Sat.Clause.of_ints [ 1; 2 ] ] in
  let s = inc_of f in
  match
    C.Incremental.solve
      ~assumptions:[ Sat.Lit.pos 1; Sat.Lit.neg 1 ] s
  with
  | C.A_unsat_assumptions failed ->
    List.iter
      (fun l ->
        if Sat.Lit.var l <> 1 then
          Alcotest.fail "failed set mentions an unrelated variable")
      failed
  | C.A_sat _ | C.A_unsat -> Alcotest.fail "expected failed assumptions"

let test_sat_under_assumptions () =
  let f =
    Sat.Cnf.of_clauses 3
      [ Sat.Clause.of_ints [ 1; 2 ]; Sat.Clause.of_ints [ -1; 3 ] ]
  in
  let s = inc_of f in
  match C.Incremental.solve ~assumptions:[ Sat.Lit.pos 1 ] s with
  | C.A_sat a ->
    Alcotest.check Alcotest.bool "assumption holds" true
      (Sat.Assignment.value a 1 = Sat.Assignment.True);
    Alcotest.check Alcotest.bool "model satisfies" true
      (Sat.Model.satisfies a f)
  | C.A_unsat_assumptions _ | C.A_unsat -> Alcotest.fail "expected sat"

let test_formula_unsat_dominates () =
  let f = Gen.Php.unsat ~holes:3 in
  let s = inc_of f in
  match C.Incremental.solve ~assumptions:[ Sat.Lit.pos 1 ] s with
  | C.A_unsat -> ()
  | C.A_unsat_assumptions _ ->
    (* also acceptable only if the assumptions really matter — they do
       not for an unsat formula, but the solver may find an assumption
       conflict first; re-solving without assumptions must say unsat *)
    (match C.Incremental.solve s with
     | C.A_unsat -> ()
     | C.A_sat _ | C.A_unsat_assumptions _ ->
       Alcotest.fail "php must be unsat without assumptions")
  | C.A_sat _ -> Alcotest.fail "php sat?!"

(* differential: assumptions behave exactly like temporary unit clauses *)
let test_assumptions_vs_units () =
  let rng = Sat.Rng.create 2024 in
  for _ = 1 to 60 do
    let nvars = 4 + Sat.Rng.int rng 8 in
    let f =
      Helpers.random_messy_cnf rng ~nvars ~nclauses:(1 + Sat.Rng.int rng 30)
    in
    let n_assum = 1 + Sat.Rng.int rng 3 in
    let assumptions =
      List.init n_assum (fun _ ->
          Sat.Lit.make (1 + Sat.Rng.int rng nvars) (Sat.Rng.bool rng))
    in
    let oracle = Solver.Enumerate.solve (with_units f assumptions) in
    let s = inc_of f in
    match C.Incremental.solve ~assumptions s, oracle with
    | C.A_sat a, Solver.Cdcl.Sat _ ->
      if not (Sat.Model.satisfies a (with_units f assumptions)) then
        Alcotest.fail "assumption model wrong"
    | (C.A_unsat_assumptions _ | C.A_unsat), Solver.Cdcl.Unsat -> ()
    | C.A_unsat, Solver.Cdcl.Sat _ ->
      Alcotest.fail "A_unsat but satisfiable under assumptions"
    | C.A_unsat_assumptions _, Solver.Cdcl.Sat _ ->
      Alcotest.fail "failed assumptions but satisfiable"
    | C.A_sat _, Solver.Cdcl.Unsat -> Alcotest.fail "sat but oracle unsat"
  done

(* the failed subset really is responsible: formula + failed is unsat *)
let test_failed_subset_is_core () =
  let rng = Sat.Rng.create 2025 in
  let tried = ref 0 in
  while !tried < 25 do
    let nvars = 5 + Sat.Rng.int rng 6 in
    let f = Helpers.random_3sat rng ~nvars ~nclauses:(4 * nvars) in
    let assumptions =
      List.init 3 (fun i ->
          Sat.Lit.make (1 + ((i * 7) mod nvars)) (Sat.Rng.bool rng))
      |> List.sort_uniq Int.compare
    in
    let s = inc_of f in
    match C.Incremental.solve ~assumptions s with
    | C.A_unsat_assumptions failed ->
      incr tried;
      (* failed ⊆ assumptions *)
      List.iter
        (fun l ->
          if not (List.mem l assumptions) then
            Alcotest.fail "failed literal not among assumptions")
        failed;
      (* and the formula plus failed alone is unsat *)
      (match Solver.Enumerate.solve (with_units f failed) with
       | Solver.Cdcl.Unsat -> ()
       | Solver.Cdcl.Sat _ -> Alcotest.fail "failed subset not conflicting")
    | C.A_sat _ | C.A_unsat -> ()
  done

let test_incremental_accumulates () =
  (* strengthen a formula clause by clause; statuses must match fresh
     solves of the growing formula *)
  let nvars = 8 in
  let rng = Sat.Rng.create 7_777 in
  let session = C.Incremental.create (Sat.Cnf.create nvars) in
  let so_far = Sat.Cnf.create nvars in
  let mismatches = ref 0 in
  for _ = 1 to 40 do
    let len = 1 + Sat.Rng.int rng 3 in
    let c =
      Sat.Clause.of_lits
        (List.init len (fun _ ->
             Sat.Lit.make (1 + Sat.Rng.int rng nvars) (Sat.Rng.bool rng)))
    in
    C.Incremental.add_clause session c;
    ignore (Sat.Cnf.add_clause so_far c);
    let fresh = Solver.Enumerate.solve so_far in
    match C.Incremental.solve session, fresh with
    | C.A_sat a, Solver.Cdcl.Sat _ ->
      if not (Sat.Model.satisfies a so_far) then incr mismatches
    | C.A_unsat, Solver.Cdcl.Unsat -> ()
    | C.A_unsat_assumptions _, _ -> incr mismatches
    | C.A_sat _, Solver.Cdcl.Unsat | C.A_unsat, Solver.Cdcl.Sat _ ->
      incr mismatches
  done;
  Alcotest.check Alcotest.int "no mismatches" 0 !mismatches

let test_incremental_reuse_learning () =
  (* repeated queries on the same unsat formula reuse the session *)
  let f = Gen.Php.unsat ~holes:4 in
  let s = inc_of f in
  (match C.Incremental.solve s with
   | C.A_unsat -> ()
   | C.A_sat _ | C.A_unsat_assumptions _ -> Alcotest.fail "unsat expected");
  let after_first = (C.Incremental.stats s).conflicts in
  (match C.Incremental.solve s with
   | C.A_unsat -> ()
   | C.A_sat _ | C.A_unsat_assumptions _ -> Alcotest.fail "still unsat");
  (* the dead session answers immediately: no new conflicts *)
  Alcotest.check Alcotest.int "no extra work on dead session" after_first
    (C.Incremental.stats s).conflicts

let test_incremental_var_bounds () =
  let s = inc_of (Sat.Cnf.create 3) in
  Alcotest.check_raises "add out-of-range"
    (Invalid_argument "Incremental.add_clause: variable out of range")
    (fun () -> C.Incremental.add_clause s (Sat.Clause.of_ints [ 4 ]));
  Alcotest.check_raises "assume out-of-range"
    (Invalid_argument "Incremental.solve: assumption variable out of range")
    (fun () ->
      ignore (C.Incremental.solve ~assumptions:[ Sat.Lit.pos 9 ] s))

let suite =
  [
    ( "assumptions",
      [
        Alcotest.test_case "forced unsat" `Quick test_assumption_forces_unsat;
        Alcotest.test_case "contradictory pair" `Quick
          test_contradictory_assumptions;
        Alcotest.test_case "sat under assumptions" `Quick
          test_sat_under_assumptions;
        Alcotest.test_case "formula unsat dominates" `Quick
          test_formula_unsat_dominates;
        Alcotest.test_case "assumptions = units" `Slow
          test_assumptions_vs_units;
        Alcotest.test_case "failed subset is a core" `Slow
          test_failed_subset_is_core;
      ] );
    ( "incremental",
      [
        Alcotest.test_case "accumulating clauses" `Slow
          test_incremental_accumulates;
        Alcotest.test_case "session reuse" `Quick
          test_incremental_reuse_learning;
        Alcotest.test_case "variable bounds" `Quick
          test_incremental_var_bounds;
      ] );
  ]
