(* Tests for literals and the clause/resolution algebra. *)

let lit_gen =
  QCheck.map
    (fun (v, s) -> Sat.Lit.make (1 + abs v mod 50) s)
    QCheck.(pair small_int bool)

let test_lit_basics () =
  let l = Sat.Lit.pos 3 in
  Alcotest.check Alcotest.int "var" 3 (Sat.Lit.var l);
  Alcotest.check Alcotest.bool "pos is not neg" false (Sat.Lit.is_neg l);
  Alcotest.check Alcotest.bool "negate flips" true
    (Sat.Lit.is_neg (Sat.Lit.negate l));
  Alcotest.check Alcotest.int "negate keeps var" 3
    (Sat.Lit.var (Sat.Lit.negate l))

let test_lit_dimacs () =
  Alcotest.check Alcotest.int "pos to_int" 7 (Sat.Lit.to_int (Sat.Lit.pos 7));
  Alcotest.check Alcotest.int "neg to_int" (-7) (Sat.Lit.to_int (Sat.Lit.neg 7));
  Alcotest.check Alcotest.int "of_int pos" (Sat.Lit.pos 9) (Sat.Lit.of_int 9);
  Alcotest.check Alcotest.int "of_int neg" (Sat.Lit.neg 9) (Sat.Lit.of_int (-9));
  Alcotest.check_raises "of_int 0 rejected"
    (Invalid_argument "Lit.of_int: 0 is not a literal") (fun () ->
      ignore (Sat.Lit.of_int 0))

let test_lit_invalid () =
  Alcotest.check_raises "variable 0 rejected"
    (Invalid_argument "Lit.make: variable must be >= 1") (fun () ->
      ignore (Sat.Lit.make 0 false))

let prop_negate_involutive =
  Helpers.qtest "negate is an involution" lit_gen (fun l ->
      Sat.Lit.negate (Sat.Lit.negate l) = l)

let prop_dimacs_roundtrip =
  Helpers.qtest "of_int/to_int roundtrip" lit_gen (fun l ->
      Sat.Lit.of_int (Sat.Lit.to_int l) = l)

let test_normalize () =
  let c = Sat.Clause.of_ints [ 3; -1; 3; 2 ] in
  (match Sat.Clause.normalize c with
   | Some d ->
     Alcotest.check (Alcotest.list Alcotest.int) "sorted deduped"
       [ -1; 2; 3 ]
       (List.sort Int.compare (Sat.Clause.to_ints d))
   | None -> Alcotest.fail "not a tautology");
  let t = Sat.Clause.of_ints [ 1; -1; 2 ] in
  Alcotest.check Alcotest.bool "tautology detected" true
    (Sat.Clause.normalize t = None)

let test_is_tautology () =
  Alcotest.check Alcotest.bool "x + -x" true
    (Sat.Clause.is_tautology (Sat.Clause.of_ints [ 4; -4 ]));
  Alcotest.check Alcotest.bool "plain clause" false
    (Sat.Clause.is_tautology (Sat.Clause.of_ints [ 4; 5; -6 ]))

let test_resolution_example () =
  (* the paper's example: (x + y)(y' + z) resolves to (x + z) on y *)
  let c1 = Sat.Clause.of_ints [ 1; 2 ] in
  let c2 = Sat.Clause.of_ints [ -2; 3 ] in
  let r = Sat.Clause.resolve c1 c2 2 in
  Alcotest.check (Alcotest.list Alcotest.int) "resolvent"
    [ 1; 3 ]
    (List.sort Int.compare (Sat.Clause.to_ints r))

let test_resolution_empty () =
  let c1 = Sat.Clause.of_ints [ 5 ] in
  let c2 = Sat.Clause.of_ints [ -5 ] in
  Alcotest.check Alcotest.int "unit vs unit gives empty clause" 0
    (Sat.Clause.size (Sat.Clause.resolve c1 c2 5))

let test_resolution_errors () =
  let c1 = Sat.Clause.of_ints [ 1; 2 ] in
  let c2 = Sat.Clause.of_ints [ 1; 3 ] in
  (try
     ignore (Sat.Clause.resolve c1 c2 1);
     Alcotest.fail "no clash accepted"
   with Invalid_argument _ -> ());
  let c3 = Sat.Clause.of_ints [ -1; -2; 4 ] in
  (try
     ignore (Sat.Clause.resolve c1 c3 1);
     Alcotest.fail "double clash accepted"
   with Invalid_argument _ -> ())

let test_clashing_vars () =
  let c1 = Sat.Clause.of_ints [ 1; 2; -3 ] in
  let c2 = Sat.Clause.of_ints [ -1; -2; 4 ] in
  Alcotest.check (Alcotest.list Alcotest.int) "both clashes found" [ 1; 2 ]
    (Sat.Clause.clashing_vars c1 c2)

(* Soundness of resolution: any total assignment satisfying both premises
   satisfies the resolvent. *)
let prop_resolution_sound =
  let gen =
    QCheck.make
      ~print:(fun (s, _) -> Printf.sprintf "seed %d" s)
      (QCheck.Gen.pair (QCheck.Gen.int_bound 100_000) (QCheck.Gen.return ()))
  in
  Helpers.qtest ~count:200 "resolution soundness" gen (fun (seed, ()) ->
      let rng = Sat.Rng.create seed in
      let nvars = 6 in
      let v = 1 + Sat.Rng.int rng nvars in
      let other () =
        let u = ref v in
        while !u = v do
          u := 1 + Sat.Rng.int rng nvars
        done;
        Sat.Lit.make !u (Sat.Rng.bool rng)
      in
      let c1 =
        Sat.Clause.of_lits
          (Sat.Lit.pos v :: List.init (Sat.Rng.int rng 3) (fun _ -> other ()))
      in
      let c2 =
        Sat.Clause.of_lits
          (Sat.Lit.neg v :: List.init (Sat.Rng.int rng 3) (fun _ -> other ()))
      in
      match Sat.Clause.clashing_vars c1 c2 with
      | [ u ] when u = v ->
        let r = Sat.Clause.resolve c1 c2 v in
        let ok = ref true in
        for mask = 0 to (1 lsl nvars) - 1 do
          let a = Sat.Assignment.create nvars in
          for i = 1 to nvars do
            Sat.Assignment.set a i ((mask lsr (i - 1)) land 1 = 1)
          done;
          let sat c =
            Array.exists
              (fun l -> Sat.Assignment.lit_value a l = Sat.Assignment.True)
              c
          in
          if sat c1 && sat c2 && not (sat r) then ok := false
        done;
        !ok
      | _ -> QCheck.assume_fail ())

let suite =
  [
    ( "lit",
      [
        Alcotest.test_case "basics" `Quick test_lit_basics;
        Alcotest.test_case "dimacs conversion" `Quick test_lit_dimacs;
        Alcotest.test_case "invalid variable" `Quick test_lit_invalid;
        prop_negate_involutive;
        prop_dimacs_roundtrip;
      ] );
    ( "clause",
      [
        Alcotest.test_case "normalize" `Quick test_normalize;
        Alcotest.test_case "tautology" `Quick test_is_tautology;
        Alcotest.test_case "paper resolution example" `Quick
          test_resolution_example;
        Alcotest.test_case "empty resolvent" `Quick test_resolution_empty;
        Alcotest.test_case "resolution errors" `Quick test_resolution_errors;
        Alcotest.test_case "clashing vars" `Quick test_clashing_vars;
        prop_resolution_sound;
      ] );
  ]
