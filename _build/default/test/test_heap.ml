(* Tests for the VSIDS variable-order heap. *)

let test_pop_order () =
  let score = [| 0.0; 5.0; 1.0; 9.0; 3.0 |] in
  let h = Solver.Heap.create 4 ~score:(fun v -> score.(v)) in
  List.iter (Solver.Heap.insert h) [ 1; 2; 3; 4 ];
  Alcotest.check Alcotest.int "max first" 3 (Solver.Heap.pop_max h);
  Alcotest.check Alcotest.int "then 1" 1 (Solver.Heap.pop_max h);
  Alcotest.check Alcotest.int "then 4" 4 (Solver.Heap.pop_max h);
  Alcotest.check Alcotest.int "then 2" 2 (Solver.Heap.pop_max h);
  Alcotest.check Alcotest.bool "now empty" true (Solver.Heap.is_empty h)

let test_duplicate_insert () =
  let h = Solver.Heap.create 3 ~score:(fun v -> float_of_int v) in
  Solver.Heap.insert h 2;
  Solver.Heap.insert h 2;
  Alcotest.check Alcotest.int "no duplicates" 1 (Solver.Heap.size h);
  Alcotest.check Alcotest.bool "mem" true (Solver.Heap.mem h 2);
  Alcotest.check Alcotest.bool "not mem" false (Solver.Heap.mem h 1)

let test_update_after_bump () =
  let score = Array.make 6 0.0 in
  let h = Solver.Heap.create 5 ~score:(fun v -> score.(v)) in
  for v = 1 to 5 do
    score.(v) <- float_of_int v;
    Solver.Heap.insert h v
  done;
  (* bump variable 2 above everything and notify the heap *)
  score.(2) <- 100.0;
  Solver.Heap.update h 2;
  Alcotest.check Alcotest.int "bumped var pops first" 2 (Solver.Heap.pop_max h);
  (* lower variable 5 below everything *)
  score.(5) <- -1.0;
  Solver.Heap.update h 5;
  Alcotest.check Alcotest.int "next is 4" 4 (Solver.Heap.pop_max h);
  Alcotest.check Alcotest.int "then 3" 3 (Solver.Heap.pop_max h);
  Alcotest.check Alcotest.int "then 1" 1 (Solver.Heap.pop_max h);
  Alcotest.check Alcotest.int "then demoted 5" 5 (Solver.Heap.pop_max h)

let test_pop_empty_raises () =
  let h = Solver.Heap.create 2 ~score:(fun _ -> 0.0) in
  Alcotest.check_raises "pop on empty" Not_found (fun () ->
      ignore (Solver.Heap.pop_max h))

let test_rebuild () =
  let h = Solver.Heap.create 5 ~score:(fun v -> float_of_int v) in
  List.iter (Solver.Heap.insert h) [ 1; 2; 3 ];
  Solver.Heap.rebuild h [ 4; 5 ];
  Alcotest.check Alcotest.int "rebuild size" 2 (Solver.Heap.size h);
  Alcotest.check Alcotest.bool "old member gone" false (Solver.Heap.mem h 1);
  Alcotest.check Alcotest.int "new max" 5 (Solver.Heap.pop_max h)

(* heap sort = List.sort on random scores *)
let prop_heap_sort =
  Helpers.qtest ~count:200 "pop_max yields descending scores"
    QCheck.(small_int)
    (fun seed ->
      let rng = Sat.Rng.create seed in
      let n = 1 + Sat.Rng.int rng 40 in
      let score = Array.init (n + 1) (fun _ -> Sat.Rng.float rng) in
      let h = Solver.Heap.create n ~score:(fun v -> score.(v)) in
      for v = 1 to n do
        Solver.Heap.insert h v
      done;
      let out = ref [] in
      while not (Solver.Heap.is_empty h) do
        out := Solver.Heap.pop_max h :: !out
      done;
      let ascending = List.map (fun v -> score.(v)) !out in
      List.sort Float.compare ascending = ascending)

let suite =
  [
    ( "heap",
      [
        Alcotest.test_case "pop order" `Quick test_pop_order;
        Alcotest.test_case "duplicate insert" `Quick test_duplicate_insert;
        Alcotest.test_case "update after bump" `Quick test_update_after_bump;
        Alcotest.test_case "pop empty raises" `Quick test_pop_empty_raises;
        Alcotest.test_case "rebuild" `Quick test_rebuild;
        prop_heap_sort;
      ] );
  ]
