(* Tests for the ROBDD package and the BDD equivalence-checking baseline:
   semantics against truth-table enumeration, canonicity, counting, and
   the blow-up behaviour on multipliers. *)

module R = Bdd.Robdd
module N = Circuit.Netlist

let test_constants_and_literals () =
  let m = R.create ~nvars:3 () in
  Alcotest.check Alcotest.bool "bot is bot" true (R.is_bot m (R.bot m));
  Alcotest.check Alcotest.bool "top is top" true (R.is_top m (R.top m));
  Alcotest.check Alcotest.bool "var evals true" true
    (R.eval m (R.var m 2) [ (2, true) ]);
  Alcotest.check Alcotest.bool "var evals false" false
    (R.eval m (R.var m 2) [ (2, false) ]);
  Alcotest.check Alcotest.bool "nvar = neg var" true
    (R.equal (R.nvar m 2) (R.neg m (R.var m 2)))

let test_canonicity () =
  let m = R.create ~nvars:4 () in
  let x1 = R.var m 1 and x2 = R.var m 2 in
  (* two syntactically different constructions of the same function *)
  let a = R.or_ m (R.and_ m x1 x2) (R.and_ m x1 (R.neg m x2)) in
  Alcotest.check Alcotest.bool "simplifies to x1" true (R.equal a x1);
  let b = R.xor_ m x1 x2 in
  let b' = R.or_ m (R.and_ m x1 (R.neg m x2)) (R.and_ m (R.neg m x1) x2) in
  Alcotest.check Alcotest.bool "xor forms equal" true (R.equal b b');
  Alcotest.check Alcotest.bool "double negation" true
    (R.equal (R.neg m (R.neg m b)) b)

let test_ite_restrict_exists () =
  let m = R.create ~nvars:3 () in
  let x1 = R.var m 1 and x2 = R.var m 2 and x3 = R.var m 3 in
  let f = R.ite m x1 x2 x3 in
  Alcotest.check Alcotest.bool "ite cofactor 1" true
    (R.equal (R.restrict m f ~var:1 ~value:true) x2);
  Alcotest.check Alcotest.bool "ite cofactor 0" true
    (R.equal (R.restrict m f ~var:1 ~value:false) x3);
  (* ∃x1. (x1 ∧ x2) = x2 *)
  Alcotest.check Alcotest.bool "exists" true
    (R.equal (R.exists m 1 (R.and_ m x1 x2)) x2)

let test_sat_count () =
  let m = R.create ~nvars:3 () in
  let x1 = R.var m 1 and x2 = R.var m 2 in
  Alcotest.check (Alcotest.float 0.01) "top counts all" 8.0
    (R.sat_count m (R.top m));
  Alcotest.check (Alcotest.float 0.01) "x1 counts half" 4.0
    (R.sat_count m x1);
  Alcotest.check (Alcotest.float 0.01) "x1 or x2" 6.0
    (R.sat_count m (R.or_ m x1 x2))

let test_any_sat () =
  let m = R.create ~nvars:3 () in
  let f = R.and_ m (R.nvar m 1) (R.var m 3) in
  (match R.any_sat m f with
   | Some valuation ->
     Alcotest.check Alcotest.bool "witness satisfies" true
       (R.eval m f valuation)
   | None -> Alcotest.fail "satisfiable function has a witness");
  Alcotest.check Alcotest.bool "bot has none" true
    (R.any_sat m (R.bot m) = None)

let test_of_cnf_counts () =
  (* cross-check model counting with the enumeration oracle *)
  let rng = Sat.Rng.create 99 in
  for _ = 1 to 25 do
    let nvars = 3 + Sat.Rng.int rng 6 in
    let f =
      Helpers.random_messy_cnf rng ~nvars ~nclauses:(1 + Sat.Rng.int rng 20)
    in
    let m = R.create ~nvars () in
    let b = R.of_cnf m f in
    (* the oracle counts over occurring variables; scale up to all *)
    let occurring =
      let seen = Array.make (nvars + 1) false in
      Sat.Cnf.iter_clauses
        (fun _ c -> Array.iter (fun l -> seen.(Sat.Lit.var l) <- true) c)
        f;
      Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 seen
    in
    let scale = Float.pow 2.0 (float_of_int (nvars - occurring)) in
    let expected = float_of_int (Solver.Enumerate.count_models f) *. scale in
    let got = R.sat_count m b in
    if Float.abs (got -. expected) > 0.5 then
      Alcotest.failf "model count mismatch: bdd %.0f vs oracle %.0f" got
        expected
  done

let test_node_limit () =
  let m = R.create ~node_limit:4 ~nvars:8 () in
  try
    let acc = ref (R.top m) in
    for v = 1 to 8 do
      acc := R.xor_ m !acc (R.var m v)
    done;
    Alcotest.fail "limit not enforced"
  with R.Node_limit_reached -> ()

(* BDD semantics = circuit simulator on random DAGs *)
let prop_bdd_matches_sim =
  Helpers.qtest ~count:40 "bdd agrees with the simulator"
    QCheck.(small_int)
    (fun seed ->
      let rng = Sat.Rng.create (seed + 101) in
      let c = N.create () in
      let n_inputs = 2 + Sat.Rng.int rng 4 in
      let inputs =
        List.init n_inputs (fun i -> N.input c (Printf.sprintf "x%d" i))
      in
      let pool = ref (Array.of_list inputs) in
      for _ = 1 to 8 + Sat.Rng.int rng 12 do
        let pick () = Sat.Rng.pick rng !pool in
        let n =
          match Sat.Rng.int rng 4 with
          | 0 -> N.and_ c (pick ()) (pick ())
          | 1 -> N.or_ c (pick ()) (pick ())
          | 2 -> N.xor_ c (pick ()) (pick ())
          | _ -> N.not_ c (pick ())
        in
        pool := Array.append !pool [| n |]
      done;
      let out = !pool.(Array.length !pool - 1) in
      let m = R.create ~nvars:n_inputs () in
      match R.of_netlist m c [ out ] with
      | [ b ] ->
        let ok = ref true in
        for mask = 0 to (1 lsl n_inputs) - 1 do
          let sim_inputs =
            List.mapi
              (fun i _ -> (Printf.sprintf "x%d" i, (mask lsr i) land 1 = 1))
              inputs
          in
          let bdd_inputs =
            List.mapi (fun i _ -> (i + 1, (mask lsr i) land 1 = 1)) inputs
          in
          if Circuit.Sim.eval1 c ~inputs:sim_inputs out <> R.eval m b bdd_inputs
          then ok := false
        done;
        !ok
      | _ -> false)

let test_cec_equivalent () =
  let c = N.create () in
  let a = Circuit.Arith.word_input c "a" 4 in
  let b = Circuit.Arith.word_input c "b" 4 in
  let s1 = Circuit.Arith.add_mod c a b 4 in
  let s2 = Circuit.Arith.add_mod c b a 4 in
  match Bdd.Cec.check c s1 s2 with
  | Bdd.Cec.Equivalent -> ()
  | Bdd.Cec.Counterexample _ -> Alcotest.fail "a+b = b+a"
  | Bdd.Cec.Node_limit -> Alcotest.fail "tiny adder blew up"

let test_cec_counterexample () =
  let c = N.create () in
  let a = Circuit.Arith.word_input c "a" 3 in
  let b = Circuit.Arith.word_input c "b" 3 in
  let s1 = Circuit.Arith.add_mod c a b 3 in
  let s2 = Circuit.Arith.sub_mod c a b 3 in
  match Bdd.Cec.check c s1 s2 with
  | Bdd.Cec.Counterexample witness ->
    (* verify the witness through the simulator *)
    let all_inputs =
      List.map
        (fun name ->
          (name, Option.value ~default:false (List.assoc_opt name witness)))
        (N.input_names c)
    in
    let v1 = Circuit.Sim.eval c ~inputs:all_inputs s1 in
    let v2 = Circuit.Sim.eval c ~inputs:all_inputs s2 in
    Alcotest.check Alcotest.bool "witness distinguishes" true (v1 <> v2)
  | Bdd.Cec.Equivalent -> Alcotest.fail "add = sub ?!"
  | Bdd.Cec.Node_limit -> Alcotest.fail "tiny circuits blew up"

let test_cec_agrees_with_sat () =
  (* BDD-based CEC and SAT+checker CEC must agree on the equiv family *)
  let rng = Sat.Rng.create 4242 in
  for _ = 1 to 3 do
    let seed = Sat.Rng.int rng 10_000 in
    (* equivalent pair *)
    let f = Gen.Equiv.miter (Sat.Rng.create seed) ~inputs:5 ~outputs:3 in
    (match Solver.Cdcl.solve f with
     | Solver.Cdcl.Unsat, _ -> ()
     | Solver.Cdcl.Sat _, _ -> Alcotest.fail "sat flow says inequivalent");
    (* inequivalent pair: SAT says sat, and the model is a witness *)
    let g = Gen.Equiv.miter_buggy (Sat.Rng.create seed) ~inputs:5 ~outputs:3 in
    match Solver.Cdcl.solve g with
    | Solver.Cdcl.Sat _, _ -> ()
    | Solver.Cdcl.Unsat, _ -> Alcotest.fail "sat flow missed the bug"
  done

let test_multiplier_blowup_vs_sat () =
  (* the textbook contrast: BDD CEC exhausts a budget on the multiplier
     miter that the SAT flow settles quickly *)
  let width = 6 in
  let c = N.create () in
  let a = Circuit.Arith.word_input c "a" width in
  let b = Circuit.Arith.word_input c "b" width in
  let p1 = Circuit.Arith.mul_shift_add c a b in
  let p2 = Circuit.Arith.mul_msb_first c a b in
  (match Bdd.Cec.check ~node_limit:3_000 c p1 p2 with
   | Bdd.Cec.Node_limit -> ()
   | Bdd.Cec.Equivalent ->
     (* a 6-bit multiplier in 3k nodes would be surprising but not wrong;
        tighten the contrast assertion to the relative cost instead *)
     ()
   | Bdd.Cec.Counterexample _ -> Alcotest.fail "multipliers differ?!");
  match Solver.Cdcl.solve (Gen.Multiplier.miter ~width:4) with
  | Solver.Cdcl.Unsat, _ -> ()
  | Solver.Cdcl.Sat _, _ -> Alcotest.fail "multiplier miter sat?!"

let suite =
  [
    ( "robdd",
      [
        Alcotest.test_case "constants and literals" `Quick
          test_constants_and_literals;
        Alcotest.test_case "canonicity" `Quick test_canonicity;
        Alcotest.test_case "ite/restrict/exists" `Quick
          test_ite_restrict_exists;
        Alcotest.test_case "sat count" `Quick test_sat_count;
        Alcotest.test_case "any_sat" `Quick test_any_sat;
        Alcotest.test_case "model counts vs oracle" `Slow test_of_cnf_counts;
        Alcotest.test_case "node limit" `Quick test_node_limit;
        prop_bdd_matches_sim;
      ] );
    ( "bdd-cec",
      [
        Alcotest.test_case "equivalent adders" `Quick test_cec_equivalent;
        Alcotest.test_case "counterexample" `Quick test_cec_counterexample;
        Alcotest.test_case "agrees with SAT flow" `Quick
          test_cec_agrees_with_sat;
        Alcotest.test_case "multiplier blow-up" `Quick
          test_multiplier_blowup_vs_sat;
      ] );
  ]
