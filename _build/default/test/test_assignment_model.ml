(* Tests for partial assignments and the linear-time model verifier —
   the "easy half" of validation (paper §1). *)

let test_assignment_basics () =
  let a = Sat.Assignment.create 5 in
  Alcotest.check Alcotest.bool "fresh unassigned" false
    (Sat.Assignment.is_assigned a 3);
  Sat.Assignment.set a 3 true;
  Alcotest.check Alcotest.bool "assigned now" true
    (Sat.Assignment.is_assigned a 3);
  Alcotest.check Alcotest.bool "value" true
    (Sat.Assignment.value a 3 = Sat.Assignment.True);
  Sat.Assignment.unset a 3;
  Alcotest.check Alcotest.bool "unset" false (Sat.Assignment.is_assigned a 3)

let test_lit_value () =
  let a = Sat.Assignment.create 3 in
  Sat.Assignment.set a 1 true;
  Sat.Assignment.set a 2 false;
  let v = Sat.Assignment.lit_value a in
  Alcotest.check Alcotest.bool "x1 true" true (v (Sat.Lit.pos 1) = Sat.Assignment.True);
  Alcotest.check Alcotest.bool "-x1 false" true (v (Sat.Lit.neg 1) = Sat.Assignment.False);
  Alcotest.check Alcotest.bool "-x2 true" true (v (Sat.Lit.neg 2) = Sat.Assignment.True);
  Alcotest.check Alcotest.bool "x3 unassigned" true
    (v (Sat.Lit.pos 3) = Sat.Assignment.Unassigned)

let test_to_list_roundtrip () =
  let a = Sat.Assignment.of_bool_list [ true; false; true ] in
  Alcotest.check Alcotest.int "nvars" 3 (Sat.Assignment.nvars a);
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.bool))
    "to_list"
    [ (1, true); (2, false); (3, true) ]
    (Sat.Assignment.to_list a)

let test_clause_status () =
  let a = Sat.Assignment.create 4 in
  Sat.Assignment.set a 1 false;
  Sat.Assignment.set a 2 false;
  let status c = Sat.Model.clause_status a (Sat.Clause.of_ints c) in
  Alcotest.check Alcotest.bool "conflicting" true
    (status [ 1; 2 ] = Sat.Model.Conflicting);
  Alcotest.check Alcotest.bool "unit" true
    (status [ 1; 2; 3 ] = Sat.Model.Unit (Sat.Lit.pos 3));
  Alcotest.check Alcotest.bool "satisfied" true
    (status [ -1; 3 ] = Sat.Model.Satisfied);
  Alcotest.check Alcotest.bool "unresolved" true
    (status [ 3; 4 ] = Sat.Model.Unresolved)

let test_satisfies () =
  let f =
    Sat.Cnf.of_clauses 3
      [ Sat.Clause.of_ints [ 1; 2 ]; Sat.Clause.of_ints [ -1; 3 ] ]
  in
  let a = Sat.Assignment.of_bool_list [ true; false; true ] in
  Alcotest.check Alcotest.bool "model satisfies" true (Sat.Model.satisfies a f);
  let b = Sat.Assignment.of_bool_list [ true; false; false ] in
  Alcotest.check Alcotest.bool "non-model rejected" false
    (Sat.Model.satisfies b f);
  Alcotest.check (Alcotest.option Alcotest.int) "falsified index" (Some 1)
    (Sat.Model.first_falsified b f)

let test_partial_not_defaulted () =
  (* an unassigned variable does not satisfy a clause *)
  let f = Sat.Cnf.of_clauses 2 [ Sat.Clause.of_ints [ 1 ] ] in
  let a = Sat.Assignment.create 2 in
  Alcotest.check Alcotest.bool "partial assignment fails" false
    (Sat.Model.satisfies a f)

(* agreement between clause_status and a straightforward recomputation *)
let prop_status_consistent =
  Helpers.qtest ~count:300 "clause_status consistency"
    QCheck.(small_int)
    (fun seed ->
      let rng = Sat.Rng.create seed in
      let nvars = 6 in
      let a = Sat.Assignment.create nvars in
      for v = 1 to nvars do
        match Sat.Rng.int rng 3 with
        | 0 -> Sat.Assignment.set a v true
        | 1 -> Sat.Assignment.set a v false
        | _ -> ()
      done;
      let len = 1 + Sat.Rng.int rng 4 in
      let c =
        Sat.Clause.of_lits
          (List.init len (fun _ ->
               Sat.Lit.make (1 + Sat.Rng.int rng nvars) (Sat.Rng.bool rng)))
      in
      let n_true = ref 0 and n_false = ref 0 and n_un = ref 0 in
      Array.iter
        (fun l ->
          match Sat.Assignment.lit_value a l with
          | Sat.Assignment.True -> incr n_true
          | Sat.Assignment.False -> incr n_false
          | Sat.Assignment.Unassigned -> incr n_un)
        c;
      match Sat.Model.clause_status a c with
      | Sat.Model.Satisfied -> !n_true > 0
      | Sat.Model.Conflicting -> !n_true = 0 && !n_un = 0
      | Sat.Model.Unit _ -> !n_true = 0 && !n_un = 1
      | Sat.Model.Unresolved -> !n_true = 0 && !n_un >= 2)

let suite =
  [
    ( "assignment",
      [
        Alcotest.test_case "basics" `Quick test_assignment_basics;
        Alcotest.test_case "lit_value" `Quick test_lit_value;
        Alcotest.test_case "to_list" `Quick test_to_list_roundtrip;
      ] );
    ( "model",
      [
        Alcotest.test_case "clause status" `Quick test_clause_status;
        Alcotest.test_case "satisfies" `Quick test_satisfies;
        Alcotest.test_case "partial not defaulted" `Quick
          test_partial_not_defaulted;
        prop_status_consistent;
      ] );
  ]
