(* Tests for assumption-selector core extraction, cross-validated against
   the paper's trace-based method. *)

let test_sat_input () =
  let f = Sat.Cnf.of_clauses 2 [ Sat.Clause.of_ints [ 1; 2 ] ] in
  match Pipeline.Selector_core.extract f with
  | Error `Sat -> ()
  | Ok _ -> Alcotest.fail "sat input produced a core"

let test_core_is_unsat () =
  let f = Gen.Php.unsat ~holes:4 in
  match Pipeline.Selector_core.extract f with
  | Error `Sat -> Alcotest.fail "php unsat"
  | Ok r ->
    Alcotest.check Alcotest.bool "nonempty" true (r.clause_indices <> []);
    (match Solver.Cdcl.solve r.formula with
     | Solver.Cdcl.Unsat, _ -> ()
     | Solver.Cdcl.Sat _, _ -> Alcotest.fail "selector core satisfiable")

let test_routing_core_small () =
  let f =
    Gen.Routing.channel (Sat.Rng.create 77) ~nets:40 ~tracks:4
      ~extra_conflict_density:0.03
  in
  match Pipeline.Selector_core.extract f with
  | Error `Sat -> Alcotest.fail "channel routable"
  | Ok r ->
    Alcotest.check Alcotest.bool
      (Printf.sprintf "selector core (%d) smaller than input (%d)"
         (List.length r.clause_indices) (Sat.Cnf.nclauses f))
      true
      (List.length r.clause_indices * 2 < Sat.Cnf.nclauses f)

let test_agrees_with_trace_core () =
  (* both methods must return genuine cores of the same instance; they
     need not be identical, but both shrink to something unsat *)
  let rng = Sat.Rng.create 31337 in
  let tried = ref 0 in
  while !tried < 5 do
    let f = Helpers.random_3sat rng ~nvars:12 ~nclauses:70 in
    match Pipeline.Selector_core.extract f, Pipeline.Unsat_core.extract f with
    | Error `Sat, Error `Sat -> ()
    | Ok sel, Ok tr ->
      incr tried;
      (match Solver.Enumerate.solve sel.formula with
       | Solver.Cdcl.Unsat -> ()
       | Solver.Cdcl.Sat _ -> Alcotest.fail "selector core sat");
      (match
         Solver.Enumerate.solve (Sat.Cnf.restrict_to f tr.clause_indices)
       with
       | Solver.Cdcl.Unsat -> ()
       | Solver.Cdcl.Sat _ -> Alcotest.fail "trace core sat")
    | Ok _, Error `Sat | Error `Sat, Ok _ ->
      Alcotest.fail "core methods disagree about satisfiability"
    | _, Error (`Check_failed _) -> Alcotest.fail "check failed"
  done

let suite =
  [
    ( "selector-core",
      [
        Alcotest.test_case "sat input" `Quick test_sat_input;
        Alcotest.test_case "core is unsat" `Quick test_core_is_unsat;
        Alcotest.test_case "routing core small" `Quick
          test_routing_core_small;
        Alcotest.test_case "agrees with trace core" `Slow
          test_agrees_with_trace_core;
      ] );
  ]
