test/test_arith.ml: Alcotest Circuit Helpers List Printf QCheck
