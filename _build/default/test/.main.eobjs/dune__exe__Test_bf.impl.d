test/test_bf.ml: Alcotest Array Checker Gen Harness Helpers List Pipeline Printf Sat Solver Trace
