test/test_vec.ml: Alcotest Array Helpers List QCheck Sat
