test/test_bmc_engine.ml: Alcotest Checker Circuit List Pipeline
