test/test_rup.ml: Alcotest Checker Format Gen List Pipeline Sat Solver Trace
