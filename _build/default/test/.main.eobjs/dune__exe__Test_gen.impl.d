test/test_gen.ml: Alcotest Gen Helpers Int List Pipeline Sat Solver String
