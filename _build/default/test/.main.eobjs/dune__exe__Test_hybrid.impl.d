test/test_hybrid.ml: Alcotest Checker Gen Harness Helpers List Pipeline Printf Sat Solver Trace
