test/test_fuzz.ml: Alcotest Bytes Char Checker Gen Pipeline Printexc Sat Solver String Trace
