test/test_trim.ml: Alcotest Checker Gen List Pipeline Solver String Trace
