test/test_proof_stats.ml: Alcotest Checker Gen Helpers List Pipeline Sat Solver Trace
