test/test_bdd.ml: Alcotest Array Bdd Circuit Float Gen Helpers List Option Printf QCheck Sat Solver
