test/test_df.ml: Alcotest Array Checker Gen Harness Helpers List Pipeline Sat Solver Trace
