test/test_interpolant.ml: Alcotest Checker Circuit Gen Helpers List Pipeline QCheck Sat Solver String Trace
