test/test_card.ml: Alcotest List Printf Sat Solver
