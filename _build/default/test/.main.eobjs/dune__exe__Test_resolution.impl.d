test/test_resolution.ml: Alcotest Array Checker Helpers Int List QCheck Sat
