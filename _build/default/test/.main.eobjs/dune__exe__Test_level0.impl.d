test/test_level0.ml: Alcotest Checker Format List Sat
