test/test_simplify_muc.ml: Alcotest Gen Helpers List Pipeline Printf QCheck Sat Solver
