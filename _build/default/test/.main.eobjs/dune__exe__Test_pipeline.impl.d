test/test_pipeline.ml: Alcotest Checker Gen Helpers List Pipeline Printf Sat Solver Trace
