test/helpers.ml: Alcotest Array Checker Gen List Pipeline QCheck QCheck_alcotest Sat Solver Trace
