test/test_cdcl.ml: Alcotest Checker Gen Hashtbl Helpers List Pipeline Sat Solver Trace
