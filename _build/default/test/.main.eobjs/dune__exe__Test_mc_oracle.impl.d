test/test_mc_oracle.ml: Alcotest Array Checker Circuit Hashtbl List Pipeline Printf Sat
