test/test_assignment_model.ml: Alcotest Array Helpers List QCheck Sat
