test/test_rng.ml: Alcotest Array Int List Sat
