test/test_cnf_dimacs.ml: Alcotest Filename Gen Helpers Sat Sys
