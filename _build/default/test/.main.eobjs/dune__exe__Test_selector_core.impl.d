test/test_selector_core.ml: Alcotest Gen Helpers List Pipeline Printf Sat Solver
