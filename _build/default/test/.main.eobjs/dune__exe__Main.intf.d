test/main.mli:
