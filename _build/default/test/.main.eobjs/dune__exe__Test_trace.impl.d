test/test_trace.ml: Alcotest Filename Gen Helpers List Printf QCheck Solver Sys Trace
