test/test_dll_dp.ml: Alcotest Gen Helpers List Sat Solver
