test/test_heap.ml: Alcotest Array Float Helpers List QCheck Sat Solver
