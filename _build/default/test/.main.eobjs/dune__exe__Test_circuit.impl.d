test/test_circuit.ml: Alcotest Array Circuit Helpers List Printf QCheck Sat Solver
