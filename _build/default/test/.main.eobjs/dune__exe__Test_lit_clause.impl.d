test/test_lit_clause.ml: Alcotest Array Helpers Int List Printf QCheck Sat
