test/test_assumptions.ml: Alcotest Gen Helpers Int List Sat Solver
