(* Tests for trace trimming (the proof-core trace). *)

module D = Checker.Diagnostics

let trimmed_source (r : Checker.Trim.trimmed) =
  let w = Trace.Writer.create Trace.Writer.Ascii in
  Checker.Trim.write w r;
  Trace.Reader.From_string (Trace.Writer.contents w)

let test_trim_revalidates () =
  let f = Gen.Php.unsat ~holes:5 in
  let result, _, trace = Pipeline.Validate.solve_with_trace f in
  (match result with
   | Solver.Cdcl.Unsat -> ()
   | Solver.Cdcl.Sat _ -> Alcotest.fail "php unsat");
  match Checker.Trim.trim f (Trace.Reader.From_string trace) with
  | Error d -> Alcotest.failf "trim failed: %s" (D.to_string d)
  | Ok r ->
    Alcotest.check Alcotest.bool "something was dropped" true
      (r.dropped_learned > 0);
    let src = trimmed_source r in
    (match Checker.Df.check f src with
     | Ok report ->
       Alcotest.check Alcotest.int "kept = total learned after trim"
         r.kept_learned report.total_learned;
       (* the trimmed trace is all needed: DF builds everything *)
       Alcotest.check Alcotest.int "built% is 100%" report.total_learned
         report.clauses_built
     | Error d -> Alcotest.failf "trimmed trace DF-rejected: %s" (D.to_string d));
    (match Checker.Bf.check f src with
     | Ok _ -> ()
     | Error d -> Alcotest.failf "trimmed trace BF-rejected: %s" (D.to_string d));
    (match Checker.Hybrid.check f src with
     | Ok _ -> ()
     | Error d ->
       Alcotest.failf "trimmed trace hybrid-rejected: %s" (D.to_string d))

let test_trim_idempotent () =
  let f = Gen.Php.unsat ~holes:4 in
  let _, _, trace = Pipeline.Validate.solve_with_trace f in
  match Checker.Trim.trim f (Trace.Reader.From_string trace) with
  | Error d -> Alcotest.failf "trim failed: %s" (D.to_string d)
  | Ok r1 -> (
    match Checker.Trim.trim f (trimmed_source r1) with
    | Error d -> Alcotest.failf "re-trim failed: %s" (D.to_string d)
    | Ok r2 ->
      Alcotest.check Alcotest.int "second trim drops nothing" 0
        r2.dropped_learned;
      Alcotest.check Alcotest.int "same kept count" r1.kept_learned
        r2.kept_learned)

let test_trim_shrinks_bytes () =
  let f = Gen.Php.unsat ~holes:5 in
  let _, _, trace = Pipeline.Validate.solve_with_trace f in
  match Checker.Trim.trim f (Trace.Reader.From_string trace) with
  | Error _ -> Alcotest.fail "trim failed"
  | Ok r ->
    let w = Trace.Writer.create Trace.Writer.Ascii in
    Checker.Trim.write w r;
    Alcotest.check Alcotest.bool "serialised trim is smaller" true
      (Trace.Writer.bytes_written w < String.length trace)

let test_trim_rejects_invalid () =
  let f = Gen.Php.unsat ~holes:4 in
  let _, _, trace = Pipeline.Validate.solve_with_trace f in
  let events =
    Trace.Reader.to_list (Trace.Reader.From_string trace)
    |> List.filter (function Trace.Event.Learned _ -> false | _ -> true)
  in
  let w = Trace.Writer.create Trace.Writer.Ascii in
  List.iter (Trace.Writer.emit w) events;
  match
    Checker.Trim.trim f (Trace.Reader.From_string (Trace.Writer.contents w))
  with
  | Ok _ -> Alcotest.fail "trim accepted a broken trace"
  | Error _ -> ()

let suite =
  [
    ( "trim",
      [
        Alcotest.test_case "revalidates, built%=100" `Quick
          test_trim_revalidates;
        Alcotest.test_case "idempotent" `Quick test_trim_idempotent;
        Alcotest.test_case "shrinks bytes" `Quick test_trim_shrinks_bytes;
        Alcotest.test_case "rejects invalid" `Quick test_trim_rejects_invalid;
      ] );
  ]
