(* Shared helpers for the test suite: formula generators, oracle
   comparisons, and trace-mutation utilities for the negative checker
   tests. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* --- random formula generation (deterministic) ------------------------- *)

(* A random CNF with mixed clause lengths 1..4, sometimes duplicated
   literals and clauses — deliberately messier than the benchmark
   generators to exercise degenerate paths. *)
let random_messy_cnf rng ~nvars ~nclauses =
  let f = Sat.Cnf.create nvars in
  for _ = 1 to nclauses do
    let len = 1 + Sat.Rng.int rng 4 in
    let lits =
      List.init len (fun _ ->
          Sat.Lit.make (1 + Sat.Rng.int rng nvars) (Sat.Rng.bool rng))
    in
    ignore (Sat.Cnf.add_clause f (Array.of_list lits))
  done;
  f

let random_3sat rng ~nvars ~nclauses =
  Gen.Random3sat.generate rng ~nvars ~nclauses

(* --- oracle comparison -------------------------------------------------- *)

let status_to_string = function
  | Solver.Cdcl.Sat _ -> "SAT"
  | Solver.Cdcl.Unsat -> "UNSAT"

let same_status a b =
  match a, b with
  | Solver.Cdcl.Sat _, Solver.Cdcl.Sat _ -> true
  | Solver.Cdcl.Unsat, Solver.Cdcl.Unsat -> true
  | (Solver.Cdcl.Sat _ | Solver.Cdcl.Unsat), _ -> false

(* Solve with trace, assert agreement with the enumeration oracle, verify
   models, and check UNSAT traces with both checkers.  Returns the number
   of unsat instances seen. *)
let differential_battery ?(config = Solver.Cdcl.default_config) ~seed ~rounds
    ~nvars_max ~messy () =
  let rng = Sat.Rng.create seed in
  let n_unsat = ref 0 in
  for round = 1 to rounds do
    let nvars = 3 + Sat.Rng.int rng nvars_max in
    let nclauses = 1 + Sat.Rng.int rng (5 * nvars) in
    let f =
      if messy then random_messy_cnf rng ~nvars ~nclauses
      else random_3sat rng ~nvars ~nclauses:(min nclauses (6 * nvars))
    in
    let oracle = Solver.Enumerate.solve f in
    let result, _stats, trace = Pipeline.Validate.solve_with_trace ~config f in
    if not (same_status oracle result) then
      Alcotest.failf "round %d: oracle says %s, solver says %s" round
        (status_to_string oracle) (status_to_string result);
    (match result with
     | Solver.Cdcl.Sat a ->
       if not (Sat.Model.satisfies a f) then
         Alcotest.failf "round %d: model does not satisfy the formula" round
     | Solver.Cdcl.Unsat ->
       incr n_unsat;
       let src = Trace.Reader.From_string trace in
       (match Checker.Df.check f src with
        | Ok _ -> ()
        | Error d ->
          Alcotest.failf "round %d: DF check failed: %s" round
            (Checker.Diagnostics.to_string d));
       (match Checker.Bf.check f src with
        | Ok _ -> ()
        | Error d ->
          Alcotest.failf "round %d: BF check failed: %s" round
            (Checker.Diagnostics.to_string d));
       (match Checker.Hybrid.check f src with
        | Ok _ -> ()
        | Error d ->
          Alcotest.failf "round %d: hybrid check failed: %s" round
            (Checker.Diagnostics.to_string d)))
  done;
  !n_unsat

(* --- trace mutation ----------------------------------------------------- *)

(* Produce an UNSAT formula together with its trace events, for the
   negative tests that corrupt traces. *)
let unsat_with_events () =
  let f = Gen.Php.unsat ~holes:4 in
  let result, _stats, trace = Pipeline.Validate.solve_with_trace f in
  (match result with
   | Solver.Cdcl.Unsat -> ()
   | Solver.Cdcl.Sat _ -> Alcotest.fail "php must be unsat");
  (f, Trace.Reader.to_list (Trace.Reader.From_string trace))

let events_to_source events =
  let w = Trace.Writer.create Trace.Writer.Ascii in
  List.iter (Trace.Writer.emit w) events;
  Trace.Reader.From_string (Trace.Writer.contents w)

let expect_df_failure f events pred name =
  match Checker.Df.check f (events_to_source events) with
  | Ok _ -> Alcotest.failf "%s: corrupted trace was accepted by DF" name
  | Error d ->
    if not (pred d) then
      Alcotest.failf "%s: unexpected diagnostic: %s" name
        (Checker.Diagnostics.to_string d)

let expect_bf_failure f events pred name =
  match Checker.Bf.check f (events_to_source events) with
  | Ok _ -> Alcotest.failf "%s: corrupted trace was accepted by BF" name
  | Error d ->
    if not (pred d) then
      Alcotest.failf "%s: unexpected diagnostic: %s" name
        (Checker.Diagnostics.to_string d)

(* --- qcheck plumbing ---------------------------------------------------- *)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name gen prop)
